//! Static schedule analysis: verify the compile→gate→serve pipeline
//! before a single event fires.
//!
//! The simulator's correctness story so far has been *post-hoc*: run the
//! event engine, then assert invariants on the schedule it produced
//! (capacity audits, digest tables, conservation checks). This module adds
//! the *a-priori* half — a pass pipeline over the compiled artifacts
//! ([`npu_compiler::CompiledGraph`], the engine's
//! [`OpPhases`] vector, the [`SramAllocation`], the
//! [`npu_power::GatingParams`], a serving release trace)
//! that emits structured [`Diagnostic`]s without running anything:
//!
//! * **DAG defects** — producer edges out of range or non-topological,
//!   producer lists referencing fused-away operators, folded operators
//!   that kept edges or point at invalid anchors, operators a scheduler
//!   can never make ready, isolated operators, redundant transitive edges.
//! * **Makespan bounds** — a `[lower, upper]` window derived from the
//!   critical path (with release clamping) and per-resource serial work;
//!   any *measured* makespan outside the window indicates a broken engine
//!   or a broken model, and is a hard [`Severity::Deny`].
//! * **SRAM capacity** — the allocation's static live-byte peak versus the
//!   target chip's scratchpad (subsuming the post-hoc
//!   [`SramCapacityReport`] audit, which now lives here).
//! * **Gating-config consistency** — break-even times below the wake-up
//!   amortization point, drowsy/off threshold misordering, leakage ratios
//!   outside `[0, 1)`, `setpm` lead times no compiler-visible gap can
//!   hide, duty cycles outside `(0, 1]`.
//! * **Serving-trace sanity** — per-batch release-cycle monotonicity,
//!   request spans that tile the merged graph, batch-size conservation.
//!
//! Every rule has a stable string id (`dag.cycle`, `time.makespan-above-
//! ceiling`, …) listed in [`rules`], so tests assert on exact ids and the
//! README can catalogue them. The analyzer never panics on malformed
//! input — malformed input is its *subject matter* — and its output is a
//! pure function of its input, byte for byte.

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};

use npu_compiler::{CompiledGraph, SramAllocation};
use npu_models::RequestGraph;
use npu_power::{GatingParams, GatingRule, PolicyRule, PowerPolicy};

use npu_arch::LinkGraph;

use crate::engine::{SimulationResult, DISPATCH_OVERHEAD_CYCLES};
use crate::timeline::{
    CycleInterval, OpPhases, Resource, ResourceId, ResourceSet, ResourceTimeline,
};
use crate::trace::{TraceRecorder, TraceSlice};

/// Stable rule identifiers, grouped by pass family. These strings are a
/// public contract: tests assert on them, `// lint:allow(...)`-style
/// suppressions reference them, and the README catalogues them.
pub mod rules {
    /// The graph has no operators — nothing to schedule (note).
    pub const DAG_EMPTY_GRAPH: &str = "dag.empty-graph";
    /// A producer edge references an operator id outside the graph (deny).
    pub const DAG_PRODUCER_OUT_OF_RANGE: &str = "dag.producer-out-of-range";
    /// A producer edge does not precede its consumer — the id order is not
    /// topological, so the dependency relation has a cycle (deny).
    pub const DAG_CYCLE: &str = "dag.cycle";
    /// A producer list references an operator that was fused away; the
    /// engine's anchor remap would read a `usize::MAX` position (deny).
    pub const DAG_PRODUCER_FUSED_AWAY: &str = "dag.producer-fused-away";
    /// A folded operator still carries producer edges of its own — fusion
    /// must remap group-internal edges onto the anchor (deny).
    pub const DAG_FOLDED_OP_KEEPS_EDGES: &str = "dag.folded-op-keeps-edges";
    /// `folded_into` points outside the graph, at the operator itself, or
    /// at another folded operator instead of an anchor (deny).
    pub const DAG_FOLDED_INTO_INVALID: &str = "dag.folded-into-invalid";
    /// No dependency-respecting order can ever make this operator ready
    /// (it sits on a cycle or behind a dangling producer) (deny).
    pub const DAG_UNREACHABLE_OP: &str = "dag.unreachable-op";
    /// An anchor with neither producers nor consumers in a multi-anchor
    /// graph — almost always a lowering bug such as a request subgraph
    /// that lost its merge edge (warn).
    pub const DAG_ORPHAN_SINK: &str = "dag.orphan-sink";
    /// A producer edge transitively implied by the rest of the graph;
    /// harmless to correctness but it inflates fan-in and hides the real
    /// critical path (note).
    pub const DAG_REDUNDANT_EDGE: &str = "dag.redundant-edge";
    /// The redundancy pass was skipped because the graph exceeds the
    /// ancestor-bitset budget — reported so the cap is never silent (note).
    pub const DAG_REDUNDANT_EDGE_SKIPPED: &str = "dag.redundant-edge-skipped";

    /// The release vector is neither empty nor one entry per operator
    /// (deny).
    pub const TIME_RELEASE_LENGTH_MISMATCH: &str = "time.release-length-mismatch";
    /// A measured makespan below the static lower bound: the engine
    /// finished faster than the critical path / resource work allows
    /// (deny).
    pub const TIME_MAKESPAN_BELOW_FLOOR: &str = "time.makespan-below-floor";
    /// A measured makespan above the static upper bound: the engine lost
    /// more time than a fully serial schedule (deny).
    pub const TIME_MAKESPAN_ABOVE_CEILING: &str = "time.makespan-above-ceiling";

    /// The allocation's static live-byte peak exceeds the target chip's
    /// scratchpad capacity (deny).
    pub const SRAM_PEAK_OVER_CAPACITY: &str = "sram.peak-over-capacity";
    /// One operator's reported live bytes exceed the capacity (deny).
    pub const SRAM_OP_OVER_CAPACITY: &str = "sram.op-over-capacity";
    /// The allocation was produced for a larger scratchpad than the target
    /// chip carries — its addresses do not all exist (warn).
    pub const SRAM_GEOMETRY_OVER_CAPACITY: &str = "sram.geometry-over-capacity";
    /// A tile's post-tiling SRAM footprint exceeds the scratchpad — the
    /// tiling pass failed to make the operator fit (warn).
    pub const SRAM_TILE_OVER_CAPACITY: &str = "sram.tile-over-capacity";

    /// A component's break-even time is below its wake-up amortization
    /// point: gating at exactly BET costs more energy than it saves
    /// (deny).
    pub const GATE_BET_BELOW_AMORTIZATION: &str = "gate.bet-below-amortization";
    /// SRAM drowsy/off thresholds are misordered: the state-destroying
    /// mode engages before the state-retaining one, or leaks more (deny).
    pub const GATE_SRAM_MODE_ORDERING: &str = "gate.sram-mode-ordering";
    /// A leakage ratio is outside `[0, 1)` — a gated component may not
    /// leak more than an idle-ungated one (deny).
    pub const GATE_LEAKAGE_OUT_OF_RANGE: &str = "gate.leakage-out-of-range";
    /// A component's wake-up delay exceeds the dispatch overhead, the
    /// minimum compiler-visible gap — `setpm` cannot hide the wake-up
    /// behind dispatch and every gated interval pays exposed latency
    /// (warn).
    pub const GATE_SETPM_LEAD_EXCEEDS_DISPATCH: &str = "gate.setpm-lead-exceeds-dispatch";
    /// A duty cycle outside `(0, 1]` (deny).
    pub const GATE_DUTY_CYCLE_OUT_OF_RANGE: &str = "gate.duty-cycle-out-of-range";

    /// Release cycles regress across the batch's request spans — the
    /// admission queue is FIFO, so a later span dispatched earlier means
    /// the trace is corrupt (deny).
    pub const SERVE_RELEASE_REGRESSION: &str = "serve.release-regression";
    /// The span sample counts do not sum to the batch size (deny).
    pub const SERVE_BATCH_NOT_CONSERVED: &str = "serve.batch-not-conserved";
    /// A request span is empty, overlaps its neighbour, falls outside the
    /// merged graph, or swallows the merge operator (deny).
    pub const SERVE_SPAN_OUT_OF_RANGE: &str = "serve.span-out-of-range";
    /// A request's batch was dispatched before the request arrived —
    /// causality violated in the trace (deny). Emitted by the serving
    /// layer's outcome checks.
    pub const SERVE_DISPATCH_BEFORE_ARRIVAL: &str = "serve.dispatch-before-arrival";
    /// A batch (or request) completes before it was dispatched (deny).
    /// Emitted by the serving layer's outcome checks.
    pub const SERVE_COMPLETION_BEFORE_DISPATCH: &str = "serve.completion-before-dispatch";

    /// A DVFS scale factor outside `(0, 1]` — a zero or negative scale
    /// claims free idleness, a scale above 1 makes DVFS worse than doing
    /// nothing (deny).
    pub const POLICY_SCALE_OUT_OF_RANGE: &str = "policy.scale-out-of-range";
    /// A clock-gating residual outside `[0, 1]` — the surviving fraction
    /// of idle power cannot be negative or exceed the ungated cost
    /// (deny).
    pub const POLICY_RESIDUAL_OUT_OF_RANGE: &str = "policy.residual-out-of-range";
    /// A write-back cost inconsistent with the segment size, streaming
    /// bandwidth, or break-even time — the policy would claim savings it
    /// cannot physically deliver (deny).
    pub const POLICY_WRITEBACK_INCONSISTENT: &str = "policy.writeback-inconsistent";
    /// A transition-cost configuration contradicting the hardware
    /// structure it models, e.g. a tile waking slower than the full
    /// array it is a fraction of (deny).
    pub const POLICY_TRANSITION_INCONSISTENT: &str = "policy.transition-inconsistent";

    /// A fabric link's endpoint is outside the pod's chip range (deny).
    pub const TOPO_LINK_ENDPOINT_OUT_OF_RANGE: &str = "topo.link-endpoint-out-of-range";
    /// The routing table has no route for some ordered chip pair — the
    /// fabric is disconnected or routing is broken (deny).
    pub const TOPO_ROUTE_INCOMPLETE: &str = "topo.route-incomplete";
    /// A pod's resource set disagrees with its link graph (chip count or
    /// link count), so phase link ids and fabric links cannot correspond
    /// (deny).
    pub const TOPO_CHIP_COUNT_MISMATCH: &str = "topo.chip-count-mismatch";
    /// A lowered collective phase disagrees with the fabric: a link id
    /// outside the resource set, a link set that is not the collective
    /// ring the graph routes, or per-hop step cycles that do not sum to
    /// the phase's transfer (deny).
    pub const TOPO_COLLECTIVE_LINKS_MISMATCH: &str = "topo.collective-links-mismatch";
    /// No valid parallelism configuration exists for the requested
    /// (workload, chip count) — the evaluation would have to fabricate
    /// one (deny). Emitted by the core evaluation layer.
    pub const TOPO_PARALLELISM_INFEASIBLE: &str = "topo.parallelism-infeasible";

    /// Two slices of one exported display track overlap — a resource with
    /// a single in-order issue port cannot run two operators at once, so
    /// the trace misrepresents the schedule (deny). Abutting slices are
    /// fine.
    pub const OBS_TRACK_OVERLAP: &str = "obs.track-overlap";
    /// An exported trace event extends past the schedule's makespan —
    /// the trace claims activity after the run ended (deny).
    pub const OBS_EVENT_OUT_OF_WINDOW: &str = "obs.event-out-of-window";
    /// The merged busy intervals an exported track implies disagree,
    /// record for record, with the schedule's own finalized
    /// `ResourceTimeline` track — the trace and the run it claims to
    /// depict have diverged (deny).
    pub const OBS_TIMELINE_MISMATCH: &str = "obs.timeline-mismatch";
}

/// How many diagnostics one repeating rule may emit before the remainder
/// collapses into a single summary diagnostic of the same rule id.
const PER_RULE_CAP: usize = 16;

/// Largest anchor count the redundant-edge pass will build ancestor
/// bitsets for (quadratic bits); beyond it the pass reports itself
/// skipped instead of silently not running.
const REDUNDANT_EDGE_ANCHOR_CAP: usize = 4096;

/// Diagnostic severity, ascending: notes inform, warnings smell, denials
/// make the artifact unschedulable (or the measurement unexplainable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Severity {
    /// Informational: worth a look, never blocks.
    Note,
    /// Suspicious but runnable: almost always a lowering or config smell.
    Warn,
    /// The artifact must not be run (or the measurement cannot be
    /// trusted).
    Deny,
}

impl Severity {
    /// Lower-case label used in rendered reports.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warn => "warn",
            Severity::Deny => "deny",
        }
    }
}

/// An inclusive index range `[first, last]` locating a diagnostic in
/// whatever sequence the pass analyzed — compiled-operator ids for graph
/// passes, anchor positions for phase/SRAM passes, span indices for
/// serving passes. Single-element spans have `first == last`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpSpan {
    /// First index of the span.
    pub first: usize,
    /// Last index of the span (inclusive).
    pub last: usize,
}

impl OpSpan {
    /// A one-element span.
    #[must_use]
    pub fn single(index: usize) -> Self {
        OpSpan { first: index, last: index }
    }

    /// A two-endpoint span (endpoints need not be ordered; they are
    /// normalized so `first <= last`).
    #[must_use]
    pub fn between(a: usize, b: usize) -> Self {
        OpSpan { first: a.min(b), last: a.max(b) }
    }
}

/// One finding of the static analyzer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// Stable rule identifier from [`rules`].
    pub rule_id: String,
    /// How bad it is.
    pub severity: Severity,
    /// Where it is, in the index domain of the analyzed sequence
    /// (`None` for whole-artifact findings such as config inconsistency).
    pub span: Option<OpSpan>,
    /// Human-readable explanation with the offending values inlined.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    #[must_use]
    pub fn new(
        severity: Severity,
        rule_id: &str,
        span: Option<OpSpan>,
        message: impl Into<String>,
    ) -> Self {
        Diagnostic { rule_id: rule_id.to_string(), severity, span, message: message.into() }
    }

    /// A [`Severity::Deny`] diagnostic.
    #[must_use]
    pub fn deny(rule_id: &str, span: Option<OpSpan>, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Deny, rule_id, span, message)
    }

    /// A [`Severity::Warn`] diagnostic.
    #[must_use]
    pub fn warn(rule_id: &str, span: Option<OpSpan>, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Warn, rule_id, span, message)
    }

    /// A [`Severity::Note`] diagnostic.
    #[must_use]
    pub fn note(rule_id: &str, span: Option<OpSpan>, message: impl Into<String>) -> Self {
        Diagnostic::new(Severity::Note, rule_id, span, message)
    }
}

/// The static `[lower, upper]` window (inclusive, in cycles) every
/// measured makespan of the analyzed phase vector must land in.
///
/// * `lower` is the larger of the dependency critical path (with release
///   clamping: an operator starts no earlier than its release, and its
///   DMA stream alone already forces `release + dma` cycles) and the
///   serial work bound of each single-issue resource (the SA gang, the VU
///   gang including fused tails, the demand-HBM channel, the prefetch
///   channel, the ICI port). No schedule can beat either.
/// * `upper` is the latest release plus the sum of serial per-operator
///   costs — the fully serialized schedule the event engine provably
///   never does worse than.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MakespanWindow {
    /// No schedule of the phase vector can finish before this cycle.
    pub lower_cycles: u64,
    /// No engine run of the phase vector may finish after this cycle.
    pub upper_cycles: u64,
}

impl MakespanWindow {
    /// Whether a measured makespan lands inside the window.
    #[must_use]
    pub fn contains(&self, measured_cycles: u64) -> bool {
        self.lower_cycles <= measured_cycles && measured_cycles <= self.upper_cycles
    }
}

/// The analyzer's output: an ordered diagnostic list plus the makespan
/// window when one could be established. Byte-for-byte a pure function of
/// the analyzed input.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnalysisReport {
    /// Findings in emission order (passes run in a fixed order, so this
    /// is deterministic).
    pub diagnostics: Vec<Diagnostic>,
    /// Static makespan bounds, when the phase-level pass ran on a graph
    /// free of structural denials.
    pub makespan_window: Option<MakespanWindow>,
}

impl AnalysisReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        AnalysisReport::default()
    }

    /// Appends another pass's diagnostics.
    pub fn extend(&mut self, diagnostics: impl IntoIterator<Item = Diagnostic>) {
        self.diagnostics.extend(diagnostics);
    }

    /// Merges another report (its window wins when this one has none).
    pub fn merge(&mut self, other: AnalysisReport) {
        self.diagnostics.extend(other.diagnostics);
        if self.makespan_window.is_none() {
            self.makespan_window = other.makespan_window;
        }
    }

    /// Number of diagnostics at exactly `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// Number of [`Severity::Deny`] diagnostics.
    #[must_use]
    pub fn deny_count(&self) -> usize {
        self.count(Severity::Deny)
    }

    /// Whether the analyzed artifacts may be scheduled: no denials.
    #[must_use]
    pub fn is_schedulable(&self) -> bool {
        self.deny_count() == 0
    }

    /// The denial diagnostics, in emission order.
    pub fn denials(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Deny)
    }

    /// Renders the report as a stable, line-oriented string — the byte
    /// form the determinism tests compare and the CLI tools print.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "analysis: {} deny, {} warn, {} note",
            self.count(Severity::Deny),
            self.count(Severity::Warn),
            self.count(Severity::Note),
        );
        match self.makespan_window {
            Some(w) => {
                let _ = writeln!(
                    out,
                    "; makespan window [{}, {}] cycles",
                    w.lower_cycles, w.upper_cycles
                );
            }
            None => out.push('\n'),
        }
        for d in &self.diagnostics {
            let _ = match d.span {
                Some(s) if s.first == s.last => writeln!(
                    out,
                    "  {} {} @{}: {}",
                    d.severity.label(),
                    d.rule_id,
                    s.first,
                    d.message
                ),
                Some(s) => writeln!(
                    out,
                    "  {} {} @{}..{}: {}",
                    d.severity.label(),
                    d.rule_id,
                    s.first,
                    s.last,
                    d.message
                ),
                None => writeln!(out, "  {} {}: {}", d.severity.label(), d.rule_id, d.message),
            };
        }
        out
    }
}

/// Emits per-item diagnostics for one rule with the [`PER_RULE_CAP`]
/// applied: the first `PER_RULE_CAP` findings verbatim, then one summary
/// diagnostic (same rule id and severity) carrying the overflow count.
fn push_capped(out: &mut Vec<Diagnostic>, findings: Vec<Diagnostic>) {
    let total = findings.len();
    if total == 0 {
        return;
    }
    let severity = findings[0].severity;
    let rule_id = findings[0].rule_id.clone();
    for d in findings.into_iter().take(PER_RULE_CAP) {
        out.push(d);
    }
    if total > PER_RULE_CAP {
        out.push(Diagnostic::new(
            severity,
            &rule_id,
            None,
            format!("... and {} more {} findings", total - PER_RULE_CAP, rule_id),
        ));
    }
}

// ---------------------------------------------------------------------------
// DAG pass: compiled-graph defects
// ---------------------------------------------------------------------------

/// Checks a compiled graph's dependency structure without running it:
/// every defect the timeline engine would otherwise hit as an assertion
/// (or, worse, silently misschedule) becomes a [`Severity::Deny`]
/// diagnostic, and legal-but-suspicious shapes become warnings/notes.
/// Spans are compiled-operator ids.
#[must_use]
pub fn check_compiled_graph(graph: &CompiledGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let ops = graph.ops();
    let n = ops.len();
    if n == 0 {
        out.push(Diagnostic::note(
            rules::DAG_EMPTY_GRAPH,
            None,
            format!("graph '{}' has no operators", graph.name()),
        ));
        return out;
    }

    let mut structural_deny = false;
    for (id, op) in ops.iter().enumerate() {
        if let Some(anchor) = op.folded_into {
            let anchor_ok = anchor < n && anchor != id && ops[anchor].folded_into.is_none();
            if !anchor_ok {
                structural_deny = true;
                out.push(Diagnostic::deny(
                    rules::DAG_FOLDED_INTO_INVALID,
                    Some(OpSpan::single(id)),
                    format!(
                        "operator {id} ('{}') folds into {anchor}, which is {}",
                        op.op.name,
                        if anchor >= n {
                            "outside the graph"
                        } else if anchor == id {
                            "itself"
                        } else {
                            "itself a folded operator, not an anchor"
                        }
                    ),
                ));
            }
            if !graph.producers_of(id).is_empty() {
                structural_deny = true;
                out.push(Diagnostic::deny(
                    rules::DAG_FOLDED_OP_KEEPS_EDGES,
                    Some(OpSpan::single(id)),
                    format!(
                        "folded operator {id} ('{}') still carries {} producer edges; fusion \
                         must remap them onto its anchor",
                        op.op.name,
                        graph.producers_of(id).len()
                    ),
                ));
            }
        }
        for &p in graph.producers_of(id) {
            if p >= n {
                structural_deny = true;
                out.push(Diagnostic::deny(
                    rules::DAG_PRODUCER_OUT_OF_RANGE,
                    Some(OpSpan::single(id)),
                    format!(
                        "operator {id} ('{}') lists producer {p}, but the graph has only {n} \
                         operators",
                        op.op.name
                    ),
                ));
                continue;
            }
            if p >= id {
                structural_deny = true;
                out.push(Diagnostic::deny(
                    rules::DAG_CYCLE,
                    Some(OpSpan::between(p, id)),
                    format!(
                        "operator {id} ('{}') lists producer {p}, which does not precede it — \
                         the id order is not topological",
                        op.op.name
                    ),
                ));
            }
            if ops[p].folded_into.is_some() {
                structural_deny = true;
                out.push(Diagnostic::deny(
                    rules::DAG_PRODUCER_FUSED_AWAY,
                    Some(OpSpan::between(p, id)),
                    format!(
                        "operator {id} ('{}') lists producer {p} ('{}'), which was fused away \
                         into operator {}; the engine's anchor remap has no position for it",
                        op.op.name,
                        ops[p].op.name,
                        ops[p].folded_into.map_or(0, |a| a)
                    ),
                ));
            }
        }
    }

    // Readiness: Kahn's algorithm over the producer relation. An edge
    // whose producer is out of range (or the operator itself) never
    // drains, so operators behind dangling producers and operators on
    // cycles are exactly the leftovers.
    let mut indegree = vec![0usize; n];
    let mut consumers: Vec<Vec<usize>> = vec![Vec::new(); n];
    for (id, degree) in indegree.iter_mut().enumerate() {
        for &p in graph.producers_of(id) {
            *degree += 1;
            if p < n && p != id {
                consumers[p].push(id);
            }
        }
    }
    let mut ready: Vec<usize> = (0..n).filter(|&id| indegree[id] == 0).collect();
    let mut ordered = 0usize;
    while let Some(id) = ready.pop() {
        ordered += 1;
        for &c in &consumers[id] {
            indegree[c] -= 1;
            if indegree[c] == 0 {
                ready.push(c);
            }
        }
    }
    if ordered < n {
        let stuck: Vec<Diagnostic> = (0..n)
            .filter(|&id| indegree[id] > 0)
            .map(|id| {
                Diagnostic::deny(
                    rules::DAG_UNREACHABLE_OP,
                    Some(OpSpan::single(id)),
                    format!(
                        "operator {id} ('{}') can never become ready: it waits on a dependency \
                         cycle or a dangling producer",
                        ops[id].op.name
                    ),
                )
            })
            .collect();
        push_capped(&mut out, stuck);
    }

    // Anchor-level smells need a structurally sound graph to be
    // meaningful (and the redundancy pass needs topological ids).
    if !structural_deny {
        out.extend(check_anchor_connectivity(graph));
    }
    out
}

/// Orphan anchors and redundant transitive edges, on a structurally sound
/// compiled graph. Spans are compiled-operator ids.
fn check_anchor_connectivity(graph: &CompiledGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let ops = graph.ops();
    let anchor_ids: Vec<usize> =
        ops.iter().enumerate().filter(|(_, op)| op.is_anchor()).map(|(id, _)| id).collect();
    let num_anchors = anchor_ids.len();
    if num_anchors <= 1 {
        return out;
    }
    let mut position = vec![usize::MAX; ops.len()];
    for (pos, &id) in anchor_ids.iter().enumerate() {
        position[id] = pos;
    }

    // Degree count over the anchor-level edge relation.
    let mut degree = vec![0usize; num_anchors];
    for (pos, &id) in anchor_ids.iter().enumerate() {
        for &p in graph.producers_of(id) {
            degree[pos] += 1;
            degree[position[p]] += 1;
        }
    }
    let orphans: Vec<Diagnostic> = anchor_ids
        .iter()
        .enumerate()
        .filter(|&(pos, _)| degree[pos] == 0)
        .map(|(_, &id)| {
            Diagnostic::warn(
                rules::DAG_ORPHAN_SINK,
                Some(OpSpan::single(id)),
                format!(
                    "anchor {id} ('{}') has no producers and no consumers in a {num_anchors}-\
                     anchor graph",
                    ops[id].op.name
                ),
            )
        })
        .collect();
    push_capped(&mut out, orphans);

    if num_anchors > REDUNDANT_EDGE_ANCHOR_CAP {
        out.push(Diagnostic::note(
            rules::DAG_REDUNDANT_EDGE_SKIPPED,
            None,
            format!(
                "redundant-edge pass skipped: {num_anchors} anchors exceed the \
                 {REDUNDANT_EDGE_ANCHOR_CAP}-anchor ancestor-bitset budget"
            ),
        ));
        return out;
    }

    // Strict-ancestor bitsets per anchor position; an edge p→k is
    // redundant when p is already a strict ancestor of another producer
    // of k (so a length-≥2 path p→…→k exists without the edge).
    let words = num_anchors.div_ceil(64);
    let mut ancestors = vec![0u64; num_anchors * words];
    let mut redundant = Vec::new();
    for (pos, &id) in anchor_ids.iter().enumerate() {
        let producer_positions: Vec<usize> =
            graph.producers_of(id).iter().map(|&p| position[p]).collect();
        for &pp in &producer_positions {
            let implied = producer_positions
                .iter()
                .any(|&qq| qq != pp && ancestors[qq * words + pp / 64] >> (pp % 64) & 1 == 1);
            if implied {
                redundant.push(Diagnostic::note(
                    rules::DAG_REDUNDANT_EDGE,
                    Some(OpSpan::between(anchor_ids[pp], id)),
                    format!(
                        "edge {} → {id} ('{}' → '{}') is transitively implied by the rest of \
                         the graph",
                        anchor_ids[pp], ops[anchor_ids[pp]].op.name, ops[id].op.name
                    ),
                ));
            }
        }
        // ancestors[pos] = ∪ producers (ancestors[p] | {p}); rows of
        // producers are final because ids are topological here.
        for &pp in &producer_positions {
            let (head, tail) = ancestors.split_at_mut(pos * words);
            let row = &mut tail[..words];
            let src = &head[pp * words..(pp + 1) * words];
            for (dst, &s) in row.iter_mut().zip(src) {
                *dst |= s;
            }
            row[pp / 64] |= 1 << (pp % 64);
        }
    }
    push_capped(&mut out, redundant);
    out
}

// ---------------------------------------------------------------------------
// Time pass: phase-level structure and makespan bounds
// ---------------------------------------------------------------------------

/// Phase-level dependency checks — the contract
/// [`crate::timeline::TimelineEngine::new`] enforces by assertion, as
/// diagnostics. Spans are phase-vector (anchor) positions.
#[must_use]
pub fn check_phase_graph(phases: &[OpPhases]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = phases.len();
    for (k, p) in phases.iter().enumerate() {
        for &q in &p.producers {
            if q >= n {
                out.push(Diagnostic::deny(
                    rules::DAG_PRODUCER_OUT_OF_RANGE,
                    Some(OpSpan::single(k)),
                    format!("phase {k} lists producer {q}, but the vector has only {n} phases"),
                ));
            } else if q >= k {
                out.push(Diagnostic::deny(
                    rules::DAG_CYCLE,
                    Some(OpSpan::between(q, k)),
                    format!("phase {k} lists producer {q}, which does not precede it"),
                ));
            }
        }
    }
    out
}

/// Computes the static makespan window of a phase vector under a release
/// vector (`releases` empty = use each phase's embedded release cycle).
///
/// Requires a structurally sound phase vector — run [`check_phase_graph`]
/// first; producer indices `>= k` are ignored here rather than trusted.
#[must_use]
pub fn makespan_window(phases: &[OpPhases], releases: &[u64]) -> MakespanWindow {
    makespan_window_for(phases, releases, &ResourceSet::single_chip())
}

/// Computes the static makespan window of a phase vector scheduled
/// against an explicit [`ResourceSet`] — the multi-chip generalization of
/// [`makespan_window`]. Serial work accumulates per resource *instance*
/// (each chip's units and each ICI link separately), so the floor of a
/// pod run reflects the busiest single resource, not the merged kind.
/// Units or links outside the set are skipped here (the `topo.*` pass
/// reports them); on the single-chip set the result is identical to the
/// pre-refactor per-kind accumulation.
#[must_use]
pub fn makespan_window_for(
    phases: &[OpPhases],
    releases: &[u64],
    set: &ResourceSet,
) -> MakespanWindow {
    let n = phases.len();
    let release = |k: usize| -> u64 {
        if releases.is_empty() {
            phases[k].release_cycle
        } else {
            releases.get(k).copied().unwrap_or(0)
        }
    };

    // Critical path with release clamping: finish[k] is a lower bound on
    // operator k's completion in ANY schedule the engine can produce —
    // the main phase cannot start before its producers finish or before
    // the release, and the DMA stream alone needs `release + dma`.
    let mut finish = vec![0u64; n];
    let mut critical_path = 0u64;
    let mut serial_sum = 0u64;
    let mut max_release = 0u64;
    let mut work = vec![0u64; set.num_resources()];
    let mut work_prefetch = vec![0u64; set.num_chips()];
    for k in 0..n {
        let p = &phases[k];
        let rel = release(k);
        let ready = p.producers.iter().filter(|&&q| q < k).map(|&q| finish[q]).fold(rel, u64::max);
        let f = (ready + p.dispatch_cycles + p.main_cycles.max(p.fused_vu_cycles))
            .max(rel + p.dma_cycles);
        finish[k] = f;
        critical_path = critical_path.max(f);

        let occupancy = p.dispatch_cycles + p.main_cycles;
        match &p.collective {
            Some(c) => {
                // A collective holds each of its links for its whole
                // duration, so every link accumulates the occupancy.
                for link in &c.links {
                    if let Some(w) = work.get_mut(link.index()) {
                        *w += occupancy;
                    }
                }
            }
            None => {
                if let Some(w) = work.get_mut(p.unit.index()) {
                    *w += occupancy;
                    if set.kind(p.unit) == Resource::Sa {
                        // Fused VU tails of SA anchors queue on the same
                        // chip's VU gang.
                        let chip = set.chip_of(p.unit).unwrap_or(0);
                        work[set.unit(chip, Resource::Vu).index()] += p.fused_vu_cycles;
                    }
                }
            }
        }
        work_prefetch[set.chip_of(p.unit).unwrap_or(0)] += p.dma_cycles;

        serial_sum += p.main_cycles.max(p.dma_cycles).max(p.fused_vu_cycles) + p.dispatch_cycles;
        max_release = max_release.max(rel);
    }

    let resource_floor = work.iter().chain(work_prefetch.iter()).copied().max().unwrap_or(0);
    let lower = critical_path.max(resource_floor);
    MakespanWindow { lower_cycles: lower, upper_cycles: max_release + serial_sum }
}

/// The full phase-level pass: structural checks, the makespan window when
/// they are clean, and — when a measured makespan is supplied — the
/// containment verdict. Spans are phase-vector (anchor) positions.
#[must_use]
pub fn analyze_phases(
    phases: &[OpPhases],
    releases: &[u64],
    measured_makespan: Option<u64>,
) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    report.extend(check_phase_graph(phases));
    if !releases.is_empty() && releases.len() != phases.len() {
        report.diagnostics.push(Diagnostic::deny(
            rules::TIME_RELEASE_LENGTH_MISMATCH,
            None,
            format!(
                "release vector covers {} operators but the phase vector has {}",
                releases.len(),
                phases.len()
            ),
        ));
        return report;
    }
    if phases.is_empty() || !report.is_schedulable() {
        return report;
    }
    let window = makespan_window(phases, releases);
    if let Some(measured) = measured_makespan {
        if measured < window.lower_cycles {
            report.diagnostics.push(Diagnostic::deny(
                rules::TIME_MAKESPAN_BELOW_FLOOR,
                None,
                format!(
                    "measured makespan {measured} is below the static floor {} (critical path \
                     / per-resource serial work) — the engine finished impossibly fast",
                    window.lower_cycles
                ),
            ));
        }
        if measured > window.upper_cycles {
            report.diagnostics.push(Diagnostic::deny(
                rules::TIME_MAKESPAN_ABOVE_CEILING,
                None,
                format!(
                    "measured makespan {measured} exceeds the static ceiling {} (latest \
                     release + fully serial schedule) — the engine lost time no schedule \
                     should lose",
                    window.upper_cycles
                ),
            ));
        }
    }
    report.makespan_window = Some(window);
    report
}

// ---------------------------------------------------------------------------
// Topo pass: fabric structure, routing coverage, collective lowering
// ---------------------------------------------------------------------------

/// Structural checks of a pod fabric: every link endpoint must be a real
/// node and every ordered chip pair must have a route. Spans are link ids
/// for the endpoint rule and `(src, dst)` chip pairs for the route rule.
#[must_use]
pub fn check_link_graph(graph: &LinkGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let nodes = graph.num_nodes();
    let endpoints: Vec<Diagnostic> = graph
        .links()
        .iter()
        .enumerate()
        .filter(|&(_, link)| link.src >= nodes || link.dst >= nodes)
        .map(|(id, link)| {
            Diagnostic::deny(
                rules::TOPO_LINK_ENDPOINT_OUT_OF_RANGE,
                Some(OpSpan::single(id)),
                format!(
                    "link {id} ({} -> {}) has an endpoint outside the {nodes}-node fabric",
                    link.src, link.dst
                ),
            )
        })
        .collect();
    push_capped(&mut out, endpoints);
    let mut unrouted = Vec::new();
    for src in 0..graph.num_chips() {
        for dst in 0..graph.num_chips() {
            if src != dst && graph.route(src, dst).is_empty() {
                unrouted.push(Diagnostic::deny(
                    rules::TOPO_ROUTE_INCOMPLETE,
                    Some(OpSpan::between(src, dst)),
                    format!(
                        "no route from chip {src} to chip {dst} — the fabric is disconnected \
                         or routing failed"
                    ),
                ));
            }
        }
    }
    push_capped(&mut out, unrouted);
    out
}

/// Checks that a pod's [`ResourceSet`] and its [`LinkGraph`] describe the
/// same machine: same chip count, one link resource per fabric link.
#[must_use]
pub fn check_pod_consistency(set: &ResourceSet, graph: &LinkGraph) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if set.num_chips() != graph.num_chips() {
        out.push(Diagnostic::deny(
            rules::TOPO_CHIP_COUNT_MISMATCH,
            None,
            format!(
                "resource set has {} chips but the fabric wires {}",
                set.num_chips(),
                graph.num_chips()
            ),
        ));
    }
    if set.num_links() != graph.num_links() {
        out.push(Diagnostic::deny(
            rules::TOPO_CHIP_COUNT_MISMATCH,
            None,
            format!(
                "resource set has {} link resources but the fabric has {} links",
                set.num_links(),
                graph.num_links()
            ),
        ));
    }
    out
}

/// Checks every lowered collective phase against the fabric it claims to
/// run on: link ids must name link resources of the set, the link set
/// must be exactly the fabric's collective-ring links, and the per-hop
/// step cycles must sum to the phase's transfer. Spans are phase-vector
/// positions.
#[must_use]
pub fn check_collective_phases(
    phases: &[OpPhases],
    set: &ResourceSet,
    graph: &LinkGraph,
) -> Vec<Diagnostic> {
    let mut ring: Vec<usize> = graph.collective_ring().into_iter().flatten().collect();
    ring.sort_unstable();
    ring.dedup();
    let mut findings = Vec::new();
    for (k, p) in phases.iter().enumerate() {
        let Some(c) = &p.collective else { continue };
        let mut used = Vec::with_capacity(c.links.len());
        let mut in_range = true;
        for link in &c.links {
            match set.link_of(*link) {
                Some(l) => used.push(l),
                None => {
                    in_range = false;
                    findings.push(Diagnostic::deny(
                        rules::TOPO_COLLECTIVE_LINKS_MISMATCH,
                        Some(OpSpan::single(k)),
                        format!(
                            "phase {k}: collective link id {} is not a link resource of the \
                             {}-chip / {}-link set",
                            link.0,
                            set.num_chips(),
                            set.num_links()
                        ),
                    ));
                }
            }
        }
        used.sort_unstable();
        used.dedup();
        if in_range && used != ring {
            findings.push(Diagnostic::deny(
                rules::TOPO_COLLECTIVE_LINKS_MISMATCH,
                Some(OpSpan::single(k)),
                format!(
                    "phase {k}: collective occupies links {used:?} but the fabric's \
                     collective ring routes over {ring:?}"
                ),
            ));
        }
        let step_sum: u64 = c.step_cycles.iter().sum();
        if step_sum != p.main_cycles {
            findings.push(Diagnostic::deny(
                rules::TOPO_COLLECTIVE_LINKS_MISMATCH,
                Some(OpSpan::single(k)),
                format!(
                    "phase {k}: per-hop step cycles sum to {step_sum} but the phase transfers \
                     for {} cycles",
                    p.main_cycles
                ),
            ));
        }
    }
    let mut out = Vec::new();
    push_capped(&mut out, findings);
    out
}

/// The full pod-level pass: fabric structure, set/graph consistency,
/// collective lowering agreement, phase-graph structure, and the
/// multi-chip makespan window (with the containment verdict when a
/// measured makespan is supplied).
#[must_use]
pub fn analyze_pod(
    phases: &[OpPhases],
    releases: &[u64],
    set: &ResourceSet,
    graph: &LinkGraph,
    measured_makespan: Option<u64>,
) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    report.extend(check_link_graph(graph));
    report.extend(check_pod_consistency(set, graph));
    report.extend(check_collective_phases(phases, set, graph));
    report.extend(check_phase_graph(phases));
    if !releases.is_empty() && releases.len() != phases.len() {
        report.diagnostics.push(Diagnostic::deny(
            rules::TIME_RELEASE_LENGTH_MISMATCH,
            None,
            format!(
                "release vector covers {} operators but the phase vector has {}",
                releases.len(),
                phases.len()
            ),
        ));
        return report;
    }
    if phases.is_empty() || !report.is_schedulable() {
        return report;
    }
    let window = makespan_window_for(phases, releases, set);
    if let Some(measured) = measured_makespan {
        if measured < window.lower_cycles {
            report.diagnostics.push(Diagnostic::deny(
                rules::TIME_MAKESPAN_BELOW_FLOOR,
                None,
                format!(
                    "measured makespan {measured} is below the static floor {} (critical path \
                     / per-resource serial work) — the engine finished impossibly fast",
                    window.lower_cycles
                ),
            ));
        }
        if measured > window.upper_cycles {
            report.diagnostics.push(Diagnostic::deny(
                rules::TIME_MAKESPAN_ABOVE_CEILING,
                None,
                format!(
                    "measured makespan {measured} exceeds the static ceiling {} (latest \
                     release + fully serial schedule) — the engine lost time no schedule \
                     should lose",
                    window.upper_cycles
                ),
            ));
        }
    }
    report.makespan_window = Some(window);
    report
}

// ---------------------------------------------------------------------------
// SRAM pass: static capacity
// ---------------------------------------------------------------------------

/// Checks an SRAM allocation's static live-byte peak against a target
/// chip's scratchpad capacity. The allocation is valid for the geometry
/// it was built with by construction; what can still go wrong — and what
/// this rule catches — is deploying it on a chip with *less* SRAM than
/// the allocator assumed. Spans are anchor positions.
#[must_use]
pub fn check_sram_allocation(
    allocation: &SramAllocation,
    target_capacity_bytes: u64,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let geometry_bytes = allocation.geometry().total_bytes();
    if geometry_bytes > target_capacity_bytes {
        out.push(Diagnostic::warn(
            rules::SRAM_GEOMETRY_OVER_CAPACITY,
            None,
            format!(
                "allocation was laid out for a {geometry_bytes}-byte scratchpad, but the \
                 target chip has only {target_capacity_bytes} bytes"
            ),
        ));
    }
    let peak = allocation.static_peak();
    if peak.peak_bytes > target_capacity_bytes {
        out.push(Diagnostic::deny(
            rules::SRAM_PEAK_OVER_CAPACITY,
            Some(OpSpan::single(peak.anchor_index)),
            format!(
                "static live-byte peak {} at anchor {} exceeds the {target_capacity_bytes}-\
                 byte scratchpad",
                peak.peak_bytes, peak.anchor_index
            ),
        ));
    }
    out
}

/// Checks each compiled operator's post-tiling SRAM footprint against the
/// scratchpad: a tile that cannot fit means the tiling pass failed, and
/// the allocator downstream will misbehave. Spans are compiled-operator
/// ids. (Pre-tiling *demand* above capacity is expected — it is the
/// paper's Figure 7 motivation — and is not flagged.)
#[must_use]
pub fn check_tile_footprints(graph: &CompiledGraph, capacity_bytes: u64) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let over: Vec<Diagnostic> = graph
        .ops()
        .iter()
        .enumerate()
        .filter(|(_, op)| op.tile.sram_used_bytes > capacity_bytes)
        .map(|(id, op)| {
            Diagnostic::warn(
                rules::SRAM_TILE_OVER_CAPACITY,
                Some(OpSpan::single(id)),
                format!(
                    "operator {id} ('{}') was tiled to {} SRAM bytes, more than the \
                     {capacity_bytes}-byte scratchpad",
                    op.op.name, op.tile.sram_used_bytes
                ),
            )
        })
        .collect();
    push_capped(&mut out, over);
    out
}

// ---------------------------------------------------------------------------
// Gating pass: configuration consistency
// ---------------------------------------------------------------------------

/// Checks a gating configuration for internal consistency, plus the
/// caller's duty cycle (the busy fraction a power projection scales by).
/// The component-level rules come from
/// [`GatingParams::consistency`](npu_power::GatingParams::consistency);
/// this pass maps them onto the analyzer's rule catalog and adds the
/// `setpm` lead check against the engine's dispatch overhead — the
/// minimum compiler-visible gap a wake-up could hide behind.
#[must_use]
pub fn check_gating_config(params: &GatingParams, duty_cycle: f64) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for finding in params.consistency() {
        let rule_id = match finding.rule {
            GatingRule::BetBelowAmortization => rules::GATE_BET_BELOW_AMORTIZATION,
            GatingRule::SramModeOrdering => rules::GATE_SRAM_MODE_ORDERING,
            GatingRule::LeakageOutOfRange => rules::GATE_LEAKAGE_OUT_OF_RANGE,
        };
        out.push(Diagnostic::deny(
            rule_id,
            None,
            format!("{}: {}", finding.component, finding.message),
        ));
    }
    let lead = params.max_component_delay();
    if lead > DISPATCH_OVERHEAD_CYCLES {
        out.push(Diagnostic::warn(
            rules::GATE_SETPM_LEAD_EXCEEDS_DISPATCH,
            None,
            format!(
                "slowest component wake-up ({lead} cycles) exceeds the \
                 {DISPATCH_OVERHEAD_CYCLES}-cycle dispatch overhead — `setpm` cannot hide \
                 wake-ups behind the minimum compiler-visible gap"
            ),
        ));
    }
    if !duty_cycle.is_finite() || duty_cycle <= 0.0 || duty_cycle > 1.0 {
        out.push(Diagnostic::deny(
            rules::GATE_DUTY_CYCLE_OUT_OF_RANGE,
            None,
            format!("duty cycle {duty_cycle} is outside (0, 1]"),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Policy pass: power-management-policy consistency
// ---------------------------------------------------------------------------

/// Checks one power-management policy's parameterization for internal
/// consistency. The findings come from
/// [`PowerPolicy::consistency`];
/// this pass maps them onto the analyzer's `policy.*` rule catalog so
/// sweeps can gate a policy matrix the same way deployments gate their
/// gating parameters.
#[must_use]
pub fn check_power_policy(policy: &dyn PowerPolicy) -> Vec<Diagnostic> {
    policy
        .consistency()
        .into_iter()
        .map(|finding| {
            let rule_id = match finding.rule {
                PolicyRule::ScaleOutOfRange => rules::POLICY_SCALE_OUT_OF_RANGE,
                PolicyRule::ResidualOutOfRange => rules::POLICY_RESIDUAL_OUT_OF_RANGE,
                PolicyRule::WritebackInconsistent => rules::POLICY_WRITEBACK_INCONSISTENT,
                PolicyRule::TransitionInconsistent => rules::POLICY_TRANSITION_INCONSISTENT,
            };
            Diagnostic::deny(rule_id, None, format!("{}: {}", policy.label(), finding.message))
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Serving pass: release-trace sanity
// ---------------------------------------------------------------------------

/// Checks a merged serving batch for trace sanity: the request spans must
/// tile the merged graph in admission order, their release cycles must be
/// monotone (the admission queue is FIFO), and the sample counts must
/// conserve the batch size. Spans are request-span indices.
#[must_use]
pub fn check_request_graph(request_graph: &RequestGraph, expected_batch: u64) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let graph_len = request_graph.graph.len();
    let mut previous_end = 0usize;
    let mut previous_release = 0u64;
    let mut samples = 0u64;
    for (index, span) in request_graph.requests.iter().enumerate() {
        if span.ops.is_empty()
            || span.ops.end > graph_len
            || span.ops.start < previous_end
            || span.ops.contains(&request_graph.merge_id)
        {
            out.push(Diagnostic::deny(
                rules::SERVE_SPAN_OUT_OF_RANGE,
                Some(OpSpan::single(index)),
                format!(
                    "request span {index} covers ops {}..{} in a {graph_len}-op merged graph \
                     (previous span ended at {previous_end}, merge op is {})",
                    span.ops.start, span.ops.end, request_graph.merge_id
                ),
            ));
        }
        if span.release_cycle < previous_release {
            out.push(Diagnostic::deny(
                rules::SERVE_RELEASE_REGRESSION,
                Some(OpSpan::single(index)),
                format!(
                    "request span {index} releases at cycle {}, before span {}'s release at \
                     {previous_release} — the FIFO admission order is violated",
                    span.release_cycle,
                    index.wrapping_sub(1)
                ),
            ));
        }
        previous_end = span.ops.end.max(previous_end);
        previous_release = previous_release.max(span.release_cycle);
        samples += span.samples;
    }
    if samples != expected_batch {
        out.push(Diagnostic::deny(
            rules::SERVE_BATCH_NOT_CONSERVED,
            None,
            format!(
                "request spans carry {samples} samples but the batch dispatched \
                 {expected_batch}"
            ),
        ));
    }
    if request_graph.merge_id >= graph_len {
        out.push(Diagnostic::deny(
            rules::SERVE_SPAN_OUT_OF_RANGE,
            None,
            format!(
                "merge op {} is outside the {graph_len}-op merged graph",
                request_graph.merge_id
            ),
        ));
    }
    out
}

// ---------------------------------------------------------------------------
// Whole-deployment convenience
// ---------------------------------------------------------------------------

/// The static deployment pass: graph defects, tile footprints, and the
/// SRAM allocation peak for one compiled graph against one chip, plus —
/// when gating parameters are supplied — the gating-config pass. This is
/// what the evaluation and serving-sweep binaries run on every
/// configuration before trusting a single simulated number.
#[must_use]
pub fn analyze_deployment(
    graph: &CompiledGraph,
    spec: &npu_arch::NpuSpec,
    gating: Option<&GatingParams>,
) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    report.extend(check_compiled_graph(graph));
    let capacity = spec.sram_bytes();
    report.extend(check_tile_footprints(graph, capacity));
    // The allocator requires a sound graph; with structural denials the
    // allocation itself is the next thing that would crash, so stop here.
    if report.is_schedulable() && !graph.is_empty() {
        let allocation = SramAllocation::allocate(graph, spec.sram_geometry());
        report.extend(check_sram_allocation(&allocation, capacity));
    }
    if let Some(params) = gating {
        report.extend(check_gating_config(params, 1.0));
    }
    report
}

// ---------------------------------------------------------------------------
// Post-hoc SRAM capacity audit (moved here from `validation`)
// ---------------------------------------------------------------------------

/// One operator whose allocator-reported live SRAM bytes exceed the
/// scratchpad capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramCapacityViolation {
    /// Index of the offending operator.
    pub op_index: usize,
    /// Live bytes the allocator reported for it.
    pub live_bytes: u64,
}

/// Capacity audit of the SRAM allocation as simulated.
///
/// An allocation reporting more live bytes than the scratchpad holds is an
/// allocator bug that must fail loudly — the energy model consumes these
/// numbers as-is, and silently clamping them (as the evaluator's old
/// `live_frac.min(1.0)` did) hides the bug behind a plausible fraction.
/// The simulator debug-asserts the per-operator bound at construction;
/// this report is the release-mode equivalent, covering both the
/// per-operator totals and the instantaneous union of live segments on
/// the clock. The *static* half of the same question — will the
/// allocation fit before we run anything — is [`check_sram_allocation`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SramCapacityReport {
    /// Scratchpad capacity in bytes.
    pub capacity_bytes: u64,
    /// Peak instantaneous live bytes on the segment timeline.
    pub peak_live_bytes: u64,
    /// Operators whose reported live bytes exceed the capacity.
    pub violations: Vec<SramCapacityViolation>,
}

impl SramCapacityReport {
    /// Audits one simulation.
    #[must_use]
    pub fn for_simulation(result: &SimulationResult) -> Self {
        Self::from_parts(
            result.chip().spec().sram_bytes(),
            result.timings().iter().map(|t| t.sram_live_bytes),
            result.segment_timeline().peak_live_bytes(),
        )
    }

    /// Builds the report from raw per-operator live-byte counts and the
    /// timeline's peak (split out so the violation path is testable
    /// without forging a whole simulation).
    #[must_use]
    pub fn from_parts(
        capacity_bytes: u64,
        live_bytes: impl IntoIterator<Item = u64>,
        peak_live_bytes: u64,
    ) -> Self {
        let violations = live_bytes
            .into_iter()
            .enumerate()
            .filter(|&(_, live)| live > capacity_bytes)
            .map(|(op_index, live_bytes)| SramCapacityViolation { op_index, live_bytes })
            .collect();
        SramCapacityReport { capacity_bytes, peak_live_bytes, violations }
    }

    /// Whether the allocation respects the capacity everywhere.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty() && self.peak_live_bytes <= self.capacity_bytes
    }

    /// The audit as analyzer diagnostics (spans are operator indices).
    #[must_use]
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let over: Vec<Diagnostic> = self
            .violations
            .iter()
            .map(|v| {
                Diagnostic::deny(
                    rules::SRAM_OP_OVER_CAPACITY,
                    Some(OpSpan::single(v.op_index)),
                    format!(
                        "operator {} reports {} live SRAM bytes in a {}-byte scratchpad",
                        v.op_index, v.live_bytes, self.capacity_bytes
                    ),
                )
            })
            .collect();
        push_capped(&mut out, over);
        if self.peak_live_bytes > self.capacity_bytes {
            out.push(Diagnostic::deny(
                rules::SRAM_PEAK_OVER_CAPACITY,
                None,
                format!(
                    "timeline peak of {} live SRAM bytes exceeds the {}-byte scratchpad",
                    self.peak_live_bytes, self.capacity_bytes
                ),
            ));
        }
        out
    }
}

/// Validates a [`TraceRecorder`] export against the schedule that
/// produced it: slices on each display track must not overlap one
/// another (abutting slices are fine — they are distinct queue grants),
/// every slice must end inside the measured makespan, and the merged
/// busy intervals each resource's slices imply must agree record for
/// record with the schedule's finalized [`ResourceTimeline`] track. Any
/// disagreement is a hard [`Severity::Deny`]: the trace claims a run
/// that did not happen.
#[must_use]
pub fn check_trace_export(
    trace: &TraceRecorder,
    timeline: &ResourceTimeline,
    makespan: u64,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    let mut overlaps = Vec::new();
    let mut out_of_window = Vec::new();
    for (name, slices) in trace.display_tracks() {
        let mut sorted: Vec<&TraceSlice> = slices.iter().collect();
        sorted.sort_by_key(|s| (s.start, s.end));
        for pair in sorted.windows(2) {
            if pair[1].start < pair[0].end {
                overlaps.push(Diagnostic::deny(
                    rules::OBS_TRACK_OVERLAP,
                    Some(OpSpan::between(pair[0].op, pair[1].op)),
                    format!(
                        "track {name}: operator {} slice [{}, {}) overlaps operator {} slice [{}, {})",
                        pair[0].op, pair[0].start, pair[0].end, pair[1].op, pair[1].start, pair[1].end
                    ),
                ));
            }
        }
        for s in slices {
            if s.end > makespan {
                out_of_window.push(Diagnostic::deny(
                    rules::OBS_EVENT_OUT_OF_WINDOW,
                    Some(OpSpan::single(s.op)),
                    format!(
                        "track {name}: operator {} slice [{}, {}) ends past the {makespan}-cycle makespan",
                        s.op, s.start, s.end
                    ),
                ));
            }
        }
    }
    push_capped(&mut out, overlaps);
    push_capped(&mut out, out_of_window);

    let set = trace.resources();
    let mut mismatches = Vec::new();
    for index in 0..set.num_resources() {
        let id = ResourceId(index as u32);
        let merged = trace.merged_resource_intervals(id);
        let finalized = timeline.track(id);
        if merged != finalized {
            mismatches.push(Diagnostic::deny(
                rules::OBS_TIMELINE_MISMATCH,
                None,
                format!(
                    "resource {}: trace implies {} busy interval(s), schedule recorded {}{}",
                    trace.track_name(id),
                    merged.len(),
                    finalized.len(),
                    first_interval_divergence(&merged, finalized),
                ),
            ));
        }
    }
    push_capped(&mut out, mismatches);

    out
}

/// Locates the first record where a trace-implied interval list diverges
/// from the schedule's, for the `obs.timeline-mismatch` message. Empty
/// when one list is a strict prefix of the other (the counts in the
/// message already tell that story).
fn first_interval_divergence(merged: &[CycleInterval], finalized: &[CycleInterval]) -> String {
    for (index, (m, f)) in merged.iter().zip(finalized.iter()).enumerate() {
        if m != f {
            return format!(
                "; first divergence at record {index}: trace [{}, {}) vs schedule [{}, {})",
                m.start, m.end, f.start, f.end
            );
        }
    }
    String::new()
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::{NpuGeneration, NpuSpec, ParallelismConfig};
    use npu_compiler::Compiler;
    use npu_models::{fixtures, LlamaModel, LlmPhase, Workload};

    fn compile(graph: &npu_models::OperatorGraph) -> CompiledGraph {
        Compiler::new(NpuSpec::generation(NpuGeneration::D)).compile(graph)
    }

    #[test]
    fn clean_fixture_and_real_workload_pass_every_dag_rule() {
        let diamond = compile(&fixtures::clean_diamond());
        assert_eq!(check_compiled_graph(&diamond), Vec::new());

        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let compiled = compile(&wl.build_graph(&ParallelismConfig::single()));
        let diags = check_compiled_graph(&compiled);
        assert!(
            diags.iter().all(|d| d.severity < Severity::Deny),
            "real workload must not deny: {diags:?}"
        );
    }

    #[test]
    fn redundant_edge_fixture_is_noted() {
        let compiled = compile(&fixtures::redundant_transitive_edge());
        let diags = check_compiled_graph(&compiled);
        let hit = diags.iter().find(|d| d.rule_id == rules::DAG_REDUNDANT_EDGE);
        let hit = hit.unwrap_or_else(|| panic!("expected a redundant-edge note in {diags:?}"));
        assert_eq!(hit.severity, Severity::Note);
        assert!(diags.iter().all(|d| d.severity < Severity::Deny));
    }

    #[test]
    fn disconnected_fixture_is_flagged_as_orphan() {
        let compiled = compile(&fixtures::disconnected_op());
        let diags = check_compiled_graph(&compiled);
        let hit: Vec<_> = diags.iter().filter(|d| d.rule_id == rules::DAG_ORPHAN_SINK).collect();
        assert_eq!(hit.len(), 1, "{diags:?}");
        assert_eq!(hit[0].severity, Severity::Warn);
        assert_eq!(hit[0].span, Some(OpSpan::single(2)));
    }

    #[test]
    fn window_brackets_the_measured_makespan_on_a_real_workload() {
        let chip = npu_arch::ChipConfig::new(NpuGeneration::D, 1);
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill);
        let compiled = Compiler::new(chip.spec().clone())
            .compile(&wl.build_graph(&ParallelismConfig::single()));
        let prepared = crate::engine::Simulator::new(chip).prepare(&compiled);
        let measured = prepared.run_with_releases(&[]).total_cycles();
        let report = prepared.analyze(&[], Some(measured));
        assert!(report.is_schedulable(), "{}", report.render());
        let window = report.makespan_window.expect("window must exist");
        assert!(window.contains(measured));
        assert!(window.lower_cycles > 0);
        assert!(window.lower_cycles < window.upper_cycles);
    }

    #[test]
    fn impossible_measurements_are_denied() {
        let chip = npu_arch::ChipConfig::new(NpuGeneration::D, 1);
        let wl = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
        let compiled = Compiler::new(chip.spec().clone())
            .compile(&wl.build_graph(&ParallelismConfig::single()));
        let prepared = crate::engine::Simulator::new(chip).prepare(&compiled);
        let window = prepared.analyze(&[], None).makespan_window.expect("window");

        let fast = prepared.analyze(&[], Some(window.lower_cycles - 1));
        assert!(fast.denials().any(|d| d.rule_id == rules::TIME_MAKESPAN_BELOW_FLOOR));
        let slow = prepared.analyze(&[], Some(window.upper_cycles + 1));
        assert!(slow.denials().any(|d| d.rule_id == rules::TIME_MAKESPAN_ABOVE_CEILING));
    }

    #[test]
    fn release_length_mismatch_is_denied_without_a_window() {
        let phases = OpPhases::chain(vec![
            OpPhases {
                unit: Resource::Vu.into(),
                main_cycles: 10,
                dma_cycles: 0,
                dma_lead_cycles: 0,
                fused_vu_cycles: 0,
                dispatch_cycles: 1,
                sa_active_cycles: 0,
                release_cycle: 0,
                producers: Vec::new(),
                collective: None,
            };
            3
        ]);
        let report = analyze_phases(&phases, &[0, 5], None);
        assert!(report.denials().any(|d| d.rule_id == rules::TIME_RELEASE_LENGTH_MISMATCH));
        assert_eq!(report.makespan_window, None);
    }

    #[test]
    fn default_gating_config_is_clean_and_broken_ones_are_not() {
        let params = GatingParams::default();
        assert_eq!(check_gating_config(&params, 1.0), Vec::new());

        let broken = GatingParams { vu_bet: 3, vu_delay: 2, ..params };
        let diags = check_gating_config(&broken, 0.0);
        assert!(diags.iter().any(|d| d.rule_id == rules::GATE_BET_BELOW_AMORTIZATION));
        assert!(diags.iter().any(|d| d.rule_id == rules::GATE_DUTY_CYCLE_OUT_OF_RANGE));
    }

    #[test]
    fn report_render_is_stable_and_counts_severities() {
        let mut report = AnalysisReport::new();
        report.diagnostics.push(Diagnostic::deny("dag.cycle", Some(OpSpan::between(2, 5)), "x"));
        report.diagnostics.push(Diagnostic::warn("dag.orphan-sink", Some(OpSpan::single(7)), "y"));
        report.diagnostics.push(Diagnostic::note("dag.redundant-edge", None, "z"));
        report.makespan_window = Some(MakespanWindow { lower_cycles: 10, upper_cycles: 20 });
        assert_eq!(report.deny_count(), 1);
        assert!(!report.is_schedulable());
        let rendered = report.render();
        assert_eq!(
            rendered,
            "analysis: 1 deny, 1 warn, 1 note; makespan window [10, 20] cycles\n  deny \
             dag.cycle @2..5: x\n  warn dag.orphan-sink @7: y\n  note dag.redundant-edge: z\n"
        );
    }

    #[test]
    fn per_rule_cap_collapses_overflow_into_a_summary() {
        let findings: Vec<Diagnostic> = (0..PER_RULE_CAP + 5)
            .map(|i| Diagnostic::deny(rules::DAG_UNREACHABLE_OP, Some(OpSpan::single(i)), "stuck"))
            .collect();
        let mut out = Vec::new();
        push_capped(&mut out, findings);
        assert_eq!(out.len(), PER_RULE_CAP + 1);
        assert!(out.last().is_some_and(|d| d.message.contains("5 more")));
        assert!(out.iter().all(|d| d.rule_id == rules::DAG_UNREACHABLE_OP));
    }
}
