//! Chrome trace-event export of an observed engine run.
//!
//! [`TraceRecorder`] implements [`SimObserver`] and materializes the hook
//! stream into *display tracks*: one per resource instance of the run's
//! [`ResourceSet`] (each chip's SA/VU/HBM-DMA/ICI unit, each fabric
//! link), plus one per chip's DMA *prefetch channel* — prefetches and
//! demand gathers share the HBM-DMA unit's busy track in the timeline but
//! are separate in-order queues in the engine, so rendering them on one
//! display track would show false overlap. Serving batches ride along as
//! flow events, and power waveforms (see `npu_power`'s telemetry layer)
//! attach as counter tracks.
//!
//! [`TraceRecorder::chrome_json`] renders everything as Chrome
//! trace-event JSON (the `{"traceEvents": [...]}` object form), directly
//! loadable in `chrome://tracing` or <https://ui.perfetto.dev>. The
//! writer is hand-rolled and fully deterministic: two observed runs of
//! the same prepared engine produce byte-identical exports.

use std::fmt::Write as _;

use crate::observer::SimObserver;
use crate::timeline::{merge_intervals, CycleInterval, Resource, ResourceId, ResourceSet};

/// One busy slice on a display track: resource occupancy on behalf of
/// one operator over `[start, end)` cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceSlice {
    /// Operator (anchor index) the occupancy belongs to.
    pub op: usize,
    /// First busy cycle.
    pub start: u64,
    /// First cycle after the slice.
    pub end: u64,
}

/// A named counter track: `(cycle, value)` samples of a step function,
/// rendered as Chrome `"C"` (counter) events. Cycles are `f64` because
/// power-state boundaries (idle-detection windows) can be fractional.
#[derive(Debug, Clone, PartialEq)]
struct CounterTrack {
    name: String,
    unit: String,
    samples: Vec<(f64, f64)>,
}

/// One serving batch as a flow: dispatched at `dispatch`, completed at
/// `completion`, rendered as an `"X"` span plus `"s"`/`"f"` flow events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct BatchFlow {
    index: usize,
    dispatch: u64,
    completion: u64,
}

/// A [`SimObserver`] that records every occupancy hook into per-resource
/// display tracks and renders them as Chrome trace-event JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceRecorder {
    resources: ResourceSet,
    /// One track per resource instance, indexed by [`ResourceId`].
    unit_slices: Vec<Vec<TraceSlice>>,
    /// One track per chip's DMA prefetch channel.
    prefetch_slices: Vec<Vec<TraceSlice>>,
    counters: Vec<CounterTrack>,
    batches: Vec<BatchFlow>,
}

impl TraceRecorder {
    /// An empty recorder sized for a resource set.
    #[must_use]
    pub fn for_set(set: &ResourceSet) -> Self {
        TraceRecorder {
            resources: *set,
            unit_slices: vec![Vec::new(); set.num_resources()],
            prefetch_slices: vec![Vec::new(); set.num_chips()],
            counters: Vec::new(),
            batches: Vec::new(),
        }
    }

    /// The resource set the recorder's tracks are addressed against.
    #[must_use]
    pub fn resources(&self) -> ResourceSet {
        self.resources
    }

    /// Recorded slices of one resource's display track, in hook order.
    #[must_use]
    pub fn unit_slices(&self, id: ResourceId) -> &[TraceSlice] {
        self.unit_slices.get(id.index()).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Recorded slices of one chip's prefetch-channel display track.
    #[must_use]
    pub fn prefetch_slices(&self, chip: usize) -> &[TraceSlice] {
        self.prefetch_slices.get(chip).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Total recorded slices across every display track.
    #[must_use]
    pub fn num_slices(&self) -> usize {
        self.unit_slices.iter().chain(self.prefetch_slices.iter()).map(Vec::len).sum()
    }

    /// Injects a raw slice onto a resource's display track, bypassing the
    /// observer hooks. Exists for the `obs.*` analyzer-rule fixtures,
    /// which need *broken* exports (overlaps, out-of-window events,
    /// timeline disagreements) that no real observed run produces.
    pub fn record_raw_slice(&mut self, id: ResourceId, op: usize, start: u64, end: u64) {
        if id.index() < self.unit_slices.len() {
            self.unit_slices[id.index()].push(TraceSlice { op, start, end });
        }
    }

    /// Attaches a named counter track (rendered as `"C"` events), e.g. a
    /// component's watts-over-time waveform. `unit` labels the value in
    /// the event args (`"watts"`, `"events"`, …).
    pub fn add_counter_track(
        &mut self,
        name: impl Into<String>,
        unit: impl Into<String>,
        samples: Vec<(f64, f64)>,
    ) {
        self.counters.push(CounterTrack { name: name.into(), unit: unit.into(), samples });
    }

    /// Attaches one serving batch as a flow event from its dispatch cycle
    /// to its completion cycle.
    pub fn add_batch_flow(&mut self, index: usize, dispatch: u64, completion: u64) {
        self.batches.push(BatchFlow { index, dispatch, completion });
    }

    /// Every display track as `(name, slices)`, units first (in dense-id
    /// order), then the per-chip prefetch channels — the per-track view
    /// the `obs.*` analyzer rules walk.
    #[must_use]
    pub fn display_tracks(&self) -> Vec<(String, &[TraceSlice])> {
        let mut tracks = Vec::with_capacity(self.unit_slices.len() + self.prefetch_slices.len());
        for (index, slices) in self.unit_slices.iter().enumerate() {
            tracks.push((self.track_name(ResourceId(index as u32)), slices.as_slice()));
        }
        for (chip, slices) in self.prefetch_slices.iter().enumerate() {
            tracks.push((format!("chip{chip}.prefetch"), slices.as_slice()));
        }
        tracks
    }

    /// The merged busy intervals a resource's recorded slices imply: the
    /// unit track plus — for HBM-DMA units — the owning chip's prefetch
    /// channel, coalesced exactly like the engine's own
    /// `ResourceTimeline` finalization. Record-for-record agreement with
    /// the schedule's finalized track is the `obs.timeline-mismatch`
    /// analyzer contract.
    #[must_use]
    pub fn merged_resource_intervals(&self, id: ResourceId) -> Vec<CycleInterval> {
        let mut intervals: Vec<CycleInterval> = self
            .unit_slices(id)
            .iter()
            .filter(|s| s.end > s.start)
            .map(|s| CycleInterval { start: s.start, end: s.end })
            .collect();
        if self.resources.kind(id) == Resource::HbmDma {
            if let Some(chip) = self.resources.chip_of(id) {
                intervals.extend(
                    self.prefetch_slices(chip)
                        .iter()
                        .filter(|s| s.end > s.start)
                        .map(|s| CycleInterval { start: s.start, end: s.end }),
                );
            }
        }
        merge_intervals(&mut intervals);
        intervals
    }

    /// Display name of one resource's track.
    #[must_use]
    pub fn track_name(&self, id: ResourceId) -> String {
        if let Some(link) = self.resources.link_of(id) {
            return format!("link{link}");
        }
        let chip = self.resources.chip_of(id).unwrap_or(0);
        let kind = match self.resources.kind(id) {
            Resource::Sa => "sa",
            Resource::Vu => "vu",
            Resource::HbmDma => "hbm",
            Resource::Ici => "ici",
        };
        format!("chip{chip}.{kind}")
    }

    /// Renders the recorded run as Chrome trace-event JSON (object form),
    /// loadable in `chrome://tracing` and Perfetto. Timestamps and
    /// durations are in *cycles* (the trace viewer's "µs" unit label is
    /// cosmetic). Output is deterministic byte for byte.
    #[must_use]
    pub fn chrome_json(&self) -> String {
        let num_units = self.unit_slices.len();
        let num_chips = self.prefetch_slices.len();
        let batch_tid = num_units + num_chips;
        let mut out = String::from("{\"traceEvents\":[\n");
        let mut first = true;
        let mut push = |event: String, out: &mut String| {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            out.push_str(&event);
        };
        push(
            "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"npu-sim\"}}"
                .to_string(),
            &mut out,
        );
        for index in 0..num_units {
            push(thread_metadata(index, &self.track_name(ResourceId(index as u32))), &mut out);
        }
        for chip in 0..num_chips {
            push(thread_metadata(num_units + chip, &format!("chip{chip}.prefetch")), &mut out);
        }
        if !self.batches.is_empty() {
            push(thread_metadata(batch_tid, "batches"), &mut out);
        }
        for (index, slices) in self.unit_slices.iter().enumerate() {
            for s in slices {
                push(complete_event(index, s), &mut out);
            }
        }
        for (chip, slices) in self.prefetch_slices.iter().enumerate() {
            for s in slices {
                push(complete_event(num_units + chip, s), &mut out);
            }
        }
        for b in &self.batches {
            let dur = b.completion.saturating_sub(b.dispatch);
            push(
                format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{batch_tid},\"ts\":{},\"dur\":{dur},\
                     \"name\":\"batch{}\",\"cat\":\"serving\"}}",
                    b.dispatch, b.index
                ),
                &mut out,
            );
            push(
                format!(
                    "{{\"ph\":\"s\",\"pid\":0,\"tid\":{batch_tid},\"ts\":{},\"id\":{},\
                     \"name\":\"batch\",\"cat\":\"serving\"}}",
                    b.dispatch, b.index
                ),
                &mut out,
            );
            push(
                format!(
                    "{{\"ph\":\"f\",\"bp\":\"e\",\"pid\":0,\"tid\":{batch_tid},\"ts\":{},\
                     \"id\":{},\"name\":\"batch\",\"cat\":\"serving\"}}",
                    b.completion, b.index
                ),
                &mut out,
            );
        }
        for track in &self.counters {
            for &(ts, value) in &track.samples {
                push(
                    format!(
                        "{{\"ph\":\"C\",\"pid\":0,\"ts\":{ts},\"name\":{},\"args\":{{{}:{value}}}}}",
                        json_string(&track.name),
                        json_string(&track.unit)
                    ),
                    &mut out,
                );
            }
        }
        out.push_str("\n]}\n");
        out
    }
}

/// A `thread_name` metadata event naming one display track.
fn thread_metadata(tid: usize, name: &str) -> String {
    format!(
        "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\"args\":{{\"name\":{}}}}}",
        json_string(name)
    )
}

/// An `"X"` (complete) event for one busy slice.
fn complete_event(tid: usize, s: &TraceSlice) -> String {
    format!(
        "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"op{}\"}}",
        s.start,
        s.end.saturating_sub(s.start),
        s.op
    )
}

/// Quotes and escapes a string for JSON output.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl SimObserver for TraceRecorder {
    fn resource_busy(&mut self, id: ResourceId, op: usize, start: u64, end: u64) {
        // Empty slices (an SA phase with zero active cycles) match the
        // timeline's `record` semantics by being dropped.
        if end > start && id.index() < self.unit_slices.len() {
            self.unit_slices[id.index()].push(TraceSlice { op, start, end });
        }
    }

    fn dma_transfer(&mut self, op: usize, chip: usize, start: u64, end: u64) {
        if end > start && chip < self.prefetch_slices.len() {
            self.prefetch_slices[chip].push(TraceSlice { op, start, end });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn track_names_cover_units_links_and_prefetch() {
        let set = ResourceSet::pod(2, 3);
        let rec = TraceRecorder::for_set(&set);
        assert_eq!(rec.track_name(set.unit(0, Resource::Sa)), "chip0.sa");
        assert_eq!(rec.track_name(set.unit(1, Resource::HbmDma)), "chip1.hbm");
        assert_eq!(rec.track_name(set.link(2)), "link2");
        let tracks = rec.display_tracks();
        assert_eq!(tracks.len(), set.num_resources() + 2);
        assert_eq!(tracks.last().expect("prefetch track").0, "chip1.prefetch");
    }

    #[test]
    fn recorder_drops_empty_slices_and_merges_prefetch_into_hbm() {
        let set = ResourceSet::single_chip();
        let mut rec = TraceRecorder::for_set(&set);
        let hbm = set.unit(0, Resource::HbmDma);
        rec.resource_busy(hbm, 0, 100, 100); // empty → dropped
        rec.resource_busy(hbm, 1, 200, 300); // demand gather
        rec.dma_transfer(2, 0, 250, 400); // overlapping prefetch
        assert_eq!(rec.unit_slices(hbm).len(), 1);
        assert_eq!(rec.prefetch_slices(0).len(), 1);
        let merged = rec.merged_resource_intervals(hbm);
        assert_eq!(merged, vec![CycleInterval { start: 200, end: 400 }]);
    }

    #[test]
    fn chrome_json_is_object_form_with_metadata() {
        let set = ResourceSet::single_chip();
        let mut rec = TraceRecorder::for_set(&set);
        rec.resource_busy(set.unit(0, Resource::Sa), 0, 10, 20);
        rec.add_batch_flow(0, 5, 25);
        rec.add_counter_track("power.sa", "watts", vec![(0.0, 12.5), (10.0, 40.0)]);
        let json = rec.chrome_json();
        assert!(json.starts_with("{\"traceEvents\":[\n"));
        assert!(json.ends_with("\n]}\n"));
        assert!(json.contains("\"name\":\"chip0.sa\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"s\""));
        assert!(json.contains("\"ph\":\"f\""));
        assert!(json.contains("\"power.sa\""));
        // Deterministic: rendering twice is byte-identical.
        assert_eq!(json, rec.chrome_json());
    }

    #[test]
    fn json_string_escapes_specials() {
        assert_eq!(json_string("a\"b\\c"), "\"a\\\"b\\\\c\"");
        assert_eq!(json_string("x\ny"), "\"x\\ny\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }
}
