//! Multi-chip (pod) phase-vector construction over a [`ResourceSet`].
//!
//! The timeline engine schedules whatever resource instances its
//! [`ResourceSet`] declares; this module is the layer that builds such
//! sets from an explicit fabric ([`npu_arch::LinkGraph`]), addresses
//! per-chip units, maps the compiler's per-hop collective plans onto link
//! resources, and assembles reference pod traces (the pipeline-parallel
//! decode trace whose stage bubbles whole-chip gating targets).

use npu_arch::LinkGraph;
use npu_compiler::CollectivePlan;

use crate::engine::DISPATCH_OVERHEAD_CYCLES;
use crate::timeline::{CollectiveSchedule, OpPhases, Resource, ResourceSet, TimelineEngine};

/// Maps a compiler [`CollectivePlan`] onto the link resources of a
/// [`ResourceSet`] — the glue between the compiler's fabric-relative link
/// ids and the engine's dense resource ids. Link ids outside the set are
/// kept as (invalid) ids so the `topo.*` analyzer pass can flag them
/// rather than silently dropping traffic.
#[must_use]
pub fn collective_schedule(plan: &CollectivePlan, set: &ResourceSet) -> CollectiveSchedule {
    CollectiveSchedule {
        links: plan.links.iter().map(|&l| set.link_unchecked(l)).collect(),
        step_cycles: plan.step_cycles.clone(),
    }
}

/// Incrementally builds a pod phase vector against the resource set of an
/// explicit fabric: one resource per chip unit, one per ICI link.
#[derive(Debug)]
pub struct PodBuilder {
    set: ResourceSet,
    phases: Vec<OpPhases>,
}

impl PodBuilder {
    /// A builder for the pod a link graph wires.
    #[must_use]
    pub fn new(graph: &LinkGraph) -> Self {
        PodBuilder {
            set: ResourceSet::pod(graph.num_chips(), graph.num_links()),
            phases: Vec::new(),
        }
    }

    /// The resource set phases are addressed against.
    #[must_use]
    pub fn resources(&self) -> ResourceSet {
        self.set
    }

    /// Number of operators pushed so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.phases.len()
    }

    /// Whether no operator has been pushed yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Pushes a raw phase record and returns its index.
    pub fn push(&mut self, phases: OpPhases) -> usize {
        self.phases.push(phases);
        self.phases.len() - 1
    }

    /// Pushes a compute/transfer operator on one chip's unit of the given
    /// kind and returns its index. `producers` are indices of earlier
    /// operators.
    ///
    /// # Panics
    ///
    /// Panics if `chip` is outside the pod.
    pub fn push_unit(
        &mut self,
        chip: usize,
        kind: Resource,
        main_cycles: u64,
        dma_cycles: u64,
        producers: Vec<usize>,
    ) -> usize {
        let sa_active = if kind == Resource::Sa { main_cycles } else { 0 };
        self.push(OpPhases {
            unit: self.set.unit(chip, kind),
            main_cycles,
            dma_cycles,
            dma_lead_cycles: (dma_cycles / 4).min(dma_cycles),
            fused_vu_cycles: 0,
            dispatch_cycles: DISPATCH_OVERHEAD_CYCLES,
            sa_active_cycles: sa_active,
            release_cycle: 0,
            producers,
            collective: None,
        })
    }

    /// Pushes a lowered collective occupying the plan's links and returns
    /// its index.
    pub fn push_collective(&mut self, plan: &CollectivePlan, producers: Vec<usize>) -> usize {
        let schedule = collective_schedule(plan, &self.set);
        let unit = schedule.links.first().copied().unwrap_or(self.set.unit(0, Resource::Ici));
        self.push(OpPhases {
            unit,
            main_cycles: schedule.total_cycles(),
            dma_cycles: 0,
            dma_lead_cycles: 0,
            fused_vu_cycles: 0,
            dispatch_cycles: DISPATCH_OVERHEAD_CYCLES,
            sa_active_cycles: 0,
            release_cycle: 0,
            producers,
            collective: Some(Box::new(schedule)),
        })
    }

    /// The phase vector built so far.
    #[must_use]
    pub fn phases(&self) -> &[OpPhases] {
        &self.phases
    }

    /// Finishes the builder into a runnable engine.
    #[must_use]
    pub fn engine(self) -> TimelineEngine {
        TimelineEngine::with_resources(self.phases, self.set)
    }
}

/// Builds a pipeline-parallel decode trace on a pod: stage `s` of
/// microbatch `m` runs on chip `s`'s systolic arrays for
/// `stage_cycles[s]` cycles and depends on stage `s-1` of the same
/// microbatch and stage `s` of the previous one (the classic 1F1B-style
/// dependence frontier). With imbalanced stages the off-critical chips
/// sit in whole-chip bubbles — exactly the intervals chip-level gating
/// recovers and per-component gating already could, minus the
/// uncore/peripheral power only a whole-chip walk can cut.
///
/// # Panics
///
/// Panics if `stage_cycles` does not cover the graph's chips or
/// `microbatches` is zero.
#[must_use]
pub fn pipeline_trace(graph: &LinkGraph, stage_cycles: &[u64], microbatches: usize) -> PodBuilder {
    assert_eq!(stage_cycles.len(), graph.num_chips(), "one pipeline stage per chip of the pod");
    assert!(microbatches > 0, "a pipeline trace needs at least one microbatch");
    let stages = stage_cycles.len();
    let mut builder = PodBuilder::new(graph);
    let mut index = vec![0usize; stages];
    for m in 0..microbatches {
        for (s, &cycles) in stage_cycles.iter().enumerate() {
            let mut producers = Vec::new();
            if s > 0 {
                producers.push(index[s - 1]);
            }
            if m > 0 {
                producers.push(index[s]);
            }
            index[s] = builder.push_unit(s, Resource::Sa, cycles, 0, producers);
        }
    }
    builder
}

#[cfg(test)]
mod tests {
    use super::*;
    use npu_arch::{PodTopology, TorusKind};
    use npu_models::CollectiveKind;

    #[test]
    fn builder_set_matches_the_fabric() {
        let graph = LinkGraph::torus(&PodTopology::for_chips(TorusKind::Torus2D, 4));
        let builder = PodBuilder::new(&graph);
        assert_eq!(builder.resources().num_chips(), 4);
        assert_eq!(builder.resources().num_links(), graph.num_links());
        assert!(builder.is_empty());
    }

    #[test]
    fn collective_schedule_addresses_link_resources() {
        let graph = LinkGraph::torus(&PodTopology::for_chips(TorusKind::Torus3D, 8));
        let set = ResourceSet::pod(graph.num_chips(), graph.num_links());
        let plan = CollectivePlan::lower(CollectiveKind::AllReduce, 14_000, &graph);
        let schedule = collective_schedule(&plan, &set);
        assert_eq!(schedule.total_cycles(), 14_000);
        for (rid, &l) in schedule.links.iter().zip(&plan.links) {
            assert_eq!(set.link_of(*rid), Some(l));
        }
    }

    #[test]
    fn pipeline_trace_overlaps_stages_across_microbatches() {
        let graph = LinkGraph::torus(&PodTopology::for_chips(TorusKind::Torus2D, 4));
        let balanced = pipeline_trace(&graph, &[1000; 4], 8).engine().run();
        // Steady-state pipelining: far below the serial (stages ×
        // microbatches) cost, but at least fill + drain.
        let step = 1000 + DISPATCH_OVERHEAD_CYCLES;
        assert!(balanced.makespan < 4 * 8 * step);
        assert!(balanced.makespan >= (4 + 8 - 1) * step);
    }
}
