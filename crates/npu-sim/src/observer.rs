//! Engine observation hooks: a statically dispatched [`SimObserver`]
//! trait the event loop calls at every semantically meaningful point —
//! operator issue/retire, resource occupancy, prefetch transfers,
//! collective gang-issues, release-clamp stalls, and event pops.
//!
//! The default observer, [`NullObserver`], is a zero-sized type whose
//! hooks are empty default methods: the engine's observed run is generic
//! over `O: SimObserver`, so the `NullObserver` instantiation monomorphizes
//! every hook away and the unobserved hot path stays bit-identical and
//! allocation-free (pinned by the digest tests and the `engine_hot_loop`
//! bench). Real observers — [`crate::trace::TraceRecorder`], ad-hoc test
//! probes — pay only for what they record.
//!
//! Wall-clock profiling is deliberately quarantined behind the
//! `obs-wallclock` feature: default builds of this crate contain no
//! `Instant` reads, so the xtask determinism lint keeps holding the
//! simulation crates to pure-function output.

use crate::timeline::ResourceId;

/// Observer of one engine run. Every hook has an empty default body, so
/// an observer implements only the events it cares about; hook arguments
/// are plain scalars (plus borrowed link slices) and never require the
/// observer to allocate.
///
/// Hooks fire in event-loop order, which is deterministic for a given
/// phase vector and release vector — two observed runs of the same
/// prepared engine see byte-identical hook sequences.
pub trait SimObserver {
    /// An event was popped off the queue at cycle `at`; `pending` events
    /// remain scheduled.
    fn event_popped(&mut self, at: u64, pending: usize) {
        let _ = (at, pending);
    }

    /// Operator `op`'s main phase was issued at cycle `at` (dispatch
    /// begins here; for collectives this is the gang-issue point).
    fn op_issued(&mut self, op: usize, at: u64) {
        let _ = (op, at);
    }

    /// Operator `op` retired (all phases complete) at cycle `at`.
    fn op_retired(&mut self, op: usize, at: u64) {
        let _ = (op, at);
    }

    /// A phase of operator `op` was ready at `now` but clamped to its
    /// release cycle `release > now` — the queueing-delay stall the
    /// serving layer's admission trace induces.
    fn release_stall(&mut self, op: usize, now: u64, release: u64) {
        let _ = (op, now, release);
    }

    /// Resource `id` is busy on behalf of operator `op` over
    /// `[start, end)`. Fired at every per-resource occupancy record: SA
    /// active slices, (fused) VU work, demand gathers, analytic ICI
    /// phases, and each link of a gang-issued collective.
    fn resource_busy(&mut self, id: ResourceId, op: usize, start: u64, end: u64) {
        let _ = (id, op, start, end);
    }

    /// Operator `op`'s HBM prefetch streamed over `[start, end)` on chip
    /// `chip`'s DMA prefetch channel (demand gathers surface as
    /// [`SimObserver::resource_busy`] on the HBM-DMA unit instead).
    fn dma_transfer(&mut self, op: usize, chip: usize, start: u64, end: u64) {
        let _ = (op, chip, start, end);
    }

    /// A lowered collective gang-issued `links` for `[start, end)` (hop
    /// boundaries within the window are the plan's step cycles).
    fn collective_start(&mut self, op: usize, links: &[ResourceId], start: u64, end: u64) {
        let _ = (op, links, start, end);
    }
}

/// The zero-cost default observer: a zero-sized type with every hook left
/// at its empty default, so observed runs instantiated with it compile to
/// exactly the unobserved event loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

/// Wall-clock profiling observer, available only with the `obs-wallclock`
/// feature so default builds stay free of ambient-time reads (and the
/// xtask `wall-clock` lint keeps enforcing that).
#[cfg(feature = "obs-wallclock")]
pub mod wallclock {
    use super::SimObserver;

    /// Measures the wall-clock cost of the observed run: events popped
    /// and elapsed host time between construction and the last hook.
    #[derive(Debug)]
    pub struct WallClockProfiler {
        started: std::time::Instant, // lint:allow(wall-clock) feature-gated profiling
        events: u64,
        last_elapsed: std::time::Duration,
    }

    impl WallClockProfiler {
        /// Starts the profiler's clock.
        #[must_use]
        pub fn start() -> Self {
            WallClockProfiler {
                started: std::time::Instant::now(), // lint:allow(wall-clock) feature-gated profiling
                events: 0,
                last_elapsed: std::time::Duration::ZERO,
            }
        }

        /// Events popped since construction.
        #[must_use]
        pub fn events(&self) -> u64 {
            self.events
        }

        /// Host time between construction and the last observed event.
        #[must_use]
        pub fn elapsed(&self) -> std::time::Duration {
            self.last_elapsed
        }

        /// Events per host second over the observed window (zero before
        /// any time has elapsed).
        #[must_use]
        pub fn events_per_second(&self) -> f64 {
            let secs = self.last_elapsed.as_secs_f64();
            if secs > 0.0 {
                self.events as f64 / secs
            } else {
                0.0
            }
        }
    }

    impl SimObserver for WallClockProfiler {
        fn event_popped(&mut self, _at: u64, _pending: usize) {
            self.events += 1;
            self.last_elapsed = self.started.elapsed();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_observer_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NullObserver>(), 0);
    }

    #[test]
    fn default_hooks_are_no_ops() {
        let mut obs = NullObserver;
        obs.event_popped(0, 3);
        obs.op_issued(1, 10);
        obs.op_retired(1, 20);
        obs.release_stall(2, 5, 9);
        obs.resource_busy(ResourceId(0), 1, 0, 10);
        obs.dma_transfer(1, 0, 0, 4);
        obs.collective_start(3, &[ResourceId(4)], 7, 9);
        assert_eq!(obs, NullObserver);
    }
}
