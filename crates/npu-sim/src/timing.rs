//! Per-operator timing and activity records produced by the simulator.

use serde::{Deserialize, Serialize};

use npu_models::ExecutionUnit;

/// Timing and component activity of one executed (anchor) operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OpTiming {
    /// Index of the operator in the compiled graph.
    pub op_index: usize,
    /// Operator name.
    pub name: String,
    /// Execution unit the operator ran on.
    pub unit: ExecutionUnit,
    /// First cycle (global clock) at which any phase of the operator —
    /// including its DMA prefetch — occupies hardware.
    pub start_cycle: u64,
    /// Cycle (global clock) at which the main compute/transfer phase is
    /// dispatched; never earlier than the producer's completion.
    pub compute_start_cycle: u64,
    /// Wall-clock duration of the operator in chip cycles: its occupancy
    /// span on the global clock, from `start_cycle` to completion.
    pub duration_cycles: u64,
    /// What the operator would cost in isolation on the old serial engine
    /// (intra-operator overlap only). The sum of these over a graph is the
    /// serial baseline the overlapped makespan is compared against.
    pub serial_duration_cycles: u64,
    /// Cycles during which at least one systolic array was computing.
    pub sa_active_cycles: u64,
    /// Average fraction of processing elements doing useful work while the
    /// systolic arrays were active (the paper's SA *spatial* utilization,
    /// Figure 5). Zero when the SA was unused.
    pub sa_spatial_utilization: f64,
    /// Cycles during which at least one vector unit was computing.
    pub vu_active_cycles: u64,
    /// Cycles during which the HBM interface / DMA engine was transferring.
    pub hbm_active_cycles: u64,
    /// Cycles during which the ICI links were transferring.
    pub ici_active_cycles: u64,
    /// Bytes moved over HBM by this operator.
    pub hbm_bytes: u64,
    /// Bytes moved over the ICI by this operator.
    pub ici_bytes: u64,
    /// Floating-point operations performed.
    pub flops: f64,
    /// SRAM bytes live (allocated) while the operator executed.
    pub sram_live_bytes: u64,
    /// SRAM demand of the operator in bytes (unbounded by capacity).
    pub sram_demand_bytes: u64,
}

impl OpTiming {
    /// Duration in seconds at the given clock frequency.
    #[must_use]
    pub fn duration_seconds(&self, frequency_hz: f64) -> f64 {
        self.duration_cycles as f64 / frequency_hz
    }

    /// SA temporal utilization within this operator.
    #[must_use]
    pub fn sa_temporal_utilization(&self) -> f64 {
        if self.duration_cycles == 0 {
            0.0
        } else {
            self.sa_active_cycles as f64 / self.duration_cycles as f64
        }
    }

    /// VU temporal utilization within this operator.
    #[must_use]
    pub fn vu_temporal_utilization(&self) -> f64 {
        if self.duration_cycles == 0 {
            0.0
        } else {
            self.vu_active_cycles as f64 / self.duration_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timing() -> OpTiming {
        OpTiming {
            op_index: 0,
            name: "mm".into(),
            unit: ExecutionUnit::Sa,
            start_cycle: 0,
            compute_start_cycle: 0,
            duration_cycles: 1000,
            serial_duration_cycles: 1000,
            sa_active_cycles: 800,
            sa_spatial_utilization: 0.9,
            vu_active_cycles: 100,
            hbm_active_cycles: 200,
            ici_active_cycles: 0,
            hbm_bytes: 1 << 20,
            ici_bytes: 0,
            flops: 1e9,
            sram_live_bytes: 1 << 22,
            sram_demand_bytes: 1 << 23,
        }
    }

    #[test]
    fn utilization_ratios() {
        let t = timing();
        assert!((t.sa_temporal_utilization() - 0.8).abs() < 1e-12);
        assert!((t.vu_temporal_utilization() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn duration_conversion() {
        let t = timing();
        assert!((t.duration_seconds(1e9) - 1e-6).abs() < 1e-15);
    }

    #[test]
    fn zero_duration_is_handled() {
        let mut t = timing();
        t.duration_cycles = 0;
        assert_eq!(t.sa_temporal_utilization(), 0.0);
        assert_eq!(t.vu_temporal_utilization(), 0.0);
    }
}
