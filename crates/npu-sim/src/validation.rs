//! Simulator validation against an analytical reference model.
//!
//! The paper validates its simulator against real TPUv4 chips and reports a
//! Pearson correlation (R²) above 0.97 between profiled and simulated
//! execution times (Figure 16). Real TPU hardware is not available to this
//! reproduction, so the reference here is a closed-form roofline model: the
//! execution time of an operator is bounded below by its compute time at
//! peak FLOP/s, its HBM transfer time at peak bandwidth, and its ICI
//! transfer time. The validation report computes the same R² statistic
//! between the simulator's per-operator times and the roofline times.

use serde::{Deserialize, Serialize};

use npu_arch::NpuSpec;

use crate::engine::SimulationResult;

/// One validation point: reference (roofline) versus simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ValidationPoint {
    /// Reference execution time in microseconds.
    pub reference_us: f64,
    /// Simulated execution time in microseconds.
    pub simulated_us: f64,
}

/// A set of validation points plus the derived correlation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValidationReport {
    /// The individual scatter points (one per operator).
    pub points: Vec<ValidationPoint>,
    /// Pearson correlation coefficient squared (R²).
    pub r_squared: f64,
    /// Mean ratio of simulated over reference time.
    pub mean_ratio: f64,
}

impl ValidationReport {
    /// Builds the validation report for one simulation.
    #[must_use]
    pub fn for_simulation(result: &SimulationResult, spec: &NpuSpec) -> Self {
        let mut points = Vec::with_capacity(result.timings().len());
        for t in result.timings() {
            let compute_s = t.flops / spec.peak_flops();
            let memory_s = t.hbm_bytes as f64 / (spec.hbm_bandwidth_gbps * 1.0e9);
            let ici_s = t.ici_bytes as f64 / (spec.ici_total_gbps() * 1.0e9);
            let reference_s = compute_s.max(memory_s).max(ici_s).max(1e-9);
            // The roofline models an operator in isolation, so it is
            // compared against the operator's serial service time — its
            // global-clock span also contains scheduling stalls (waiting
            // for a producer while the prefetch already streamed), which a
            // per-operator profile on hardware would not attribute to the
            // operator either.
            let simulated_s = t.serial_duration_cycles as f64 / spec.frequency_hz();
            points.push(ValidationPoint {
                reference_us: reference_s * 1.0e6,
                simulated_us: simulated_s * 1.0e6,
            });
        }
        let r_squared = correlation_r2(
            &points.iter().map(|p| p.reference_us).collect::<Vec<_>>(),
            &points.iter().map(|p| p.simulated_us).collect::<Vec<_>>(),
        );
        let mean_ratio = if points.is_empty() {
            0.0
        } else {
            points.iter().map(|p| p.simulated_us / p.reference_us.max(1e-12)).sum::<f64>()
                / points.len() as f64
        };
        ValidationReport { points, r_squared, mean_ratio }
    }
}

// The SRAM capacity audit (`SramCapacityReport`, `SramCapacityViolation`)
// moved into the static analyzer, which subsumes it; re-exported here so
// existing `npu_sim::validation::SramCapacityReport` paths keep working.
pub use crate::analysis::{SramCapacityReport, SramCapacityViolation};

/// Pearson correlation coefficient squared between two equally long series.
///
/// Returns 0.0 for series shorter than two points or with zero variance.
#[must_use]
pub fn correlation_r2(x: &[f64], y: &[f64]) -> f64 {
    if x.len() != y.len() || x.len() < 2 {
        return 0.0;
    }
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_x = 0.0;
    let mut var_y = 0.0;
    for (&a, &b) in x.iter().zip(y.iter()) {
        cov += (a - mean_x) * (b - mean_y);
        var_x += (a - mean_x).powi(2);
        var_y += (b - mean_y).powi(2);
    }
    if var_x == 0.0 || var_y == 0.0 {
        return 0.0;
    }
    let r = cov / (var_x.sqrt() * var_y.sqrt());
    r * r
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Simulator;
    use npu_arch::{ChipConfig, NpuGeneration, ParallelismConfig};
    use npu_compiler::Compiler;
    use npu_models::{LlamaModel, LlmPhase, Workload};

    #[test]
    fn perfect_correlation() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((correlation_r2(&x, &y) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn uncorrelated_and_degenerate_series() {
        assert_eq!(correlation_r2(&[1.0], &[1.0]), 0.0);
        assert_eq!(correlation_r2(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), 0.0);
        assert_eq!(correlation_r2(&[1.0, 2.0], &[1.0]), 0.0);
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [4.0, 3.0, 2.0, 1.0];
        assert!((correlation_r2(&x, &y) - 1.0).abs() < 1e-12, "anti-correlation also has R²=1");
    }

    #[test]
    fn sram_capacity_report_flags_over_capacity_operators() {
        // Violation path: two of four operators claim more than the
        // 1 MiB capacity, and the timeline peak exceeds it too.
        let cap = 1 << 20;
        let report = SramCapacityReport::from_parts(cap, [cap / 2, cap + 1, cap, 3 * cap], 2 * cap);
        assert!(!report.is_ok());
        assert_eq!(report.violations.len(), 2);
        assert_eq!(report.violations[0].op_index, 1);
        assert_eq!(report.violations[1].op_index, 3);
        assert_eq!(report.violations[1].live_bytes, 3 * cap);
        // Peak alone also fails the audit.
        let peak_only = SramCapacityReport::from_parts(cap, [cap / 2], cap + 1);
        assert!(peak_only.violations.is_empty());
        assert!(!peak_only.is_ok());
        // A clean allocation passes.
        assert!(SramCapacityReport::from_parts(cap, [cap / 2, cap], cap).is_ok());
    }

    #[test]
    fn real_simulations_pass_the_sram_capacity_audit() {
        for wl in [
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill),
        ] {
            let chip = ChipConfig::new(NpuGeneration::D, 1);
            let graph = wl.build_graph(&ParallelismConfig::single());
            let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
            let result = Simulator::new(chip).run(&compiled);
            let report = SramCapacityReport::for_simulation(&result);
            assert!(
                report.is_ok(),
                "{wl}: peak {} / capacity {} with {} violations",
                report.peak_live_bytes,
                report.capacity_bytes,
                report.violations.len()
            );
            assert!(report.peak_live_bytes > 0, "{wl}: something must be live");
        }
    }

    #[test]
    fn simulator_correlates_with_roofline() {
        // Figure 16 substitute: the simulator should track the analytical
        // roofline model with high correlation for both compute-bound and
        // memory-bound workloads.
        for (wl, label) in [
            (Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill), "prefill"),
            (Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Decode), "decode"),
        ] {
            let chip = ChipConfig::new(NpuGeneration::D, 1);
            let graph = wl.build_graph(&ParallelismConfig::single());
            let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
            let result = Simulator::new(chip.clone()).run(&compiled);
            let report = ValidationReport::for_simulation(&result, chip.spec());
            assert!(
                report.r_squared > 0.9,
                "{label}: R² = {} below the paper's 0.97-level bar",
                report.r_squared
            );
            assert!(report.mean_ratio >= 1.0, "simulated time cannot beat the roofline");
            assert_eq!(report.points.len(), result.timings().len());
        }
    }
}
