//! The serving simulator: arrival trace → batch formation → request-graph
//! lowering → release-time scheduling on the event timeline.
//!
//! Each formed batch is lowered through the existing
//! [`Workload::try_build_request_graph`] path (independent per-request
//! subgraphs merged by a batch collective) with every operator *released*
//! at the batch's dispatch cycle, the batches are concatenated into one
//! operator graph, and the whole trace is scheduled by the unmodified
//! timeline engine. Queueing delay and inter-request gaps therefore show
//! up as ordinary idle intervals on every resource track — the
//! interval-walking gating model in `regate::Evaluator` prices them with
//! no serving-specific special-casing, which is exactly the paper's §3
//! point that out-of-duty-cycle idleness is gateable energy.
//!
//! At saturating load (every request at cycle 0, one full batch) the
//! serving schedule reproduces the classic cycle-0 batch run bit for bit:
//! zero releases are the engine's identity.

// The caches below are lookup-only (never iterated), so hash order cannot
// leak into any simulated number.
use std::collections::HashMap; // lint:allow(hash-iter)
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use npu_arch::{ChipConfig, ComponentKind, NpuGeneration, ParallelismConfig};
use npu_compiler::{CompiledGraph, Compiler};
use npu_models::{OperatorGraph, Workload};
use npu_sim::analysis::{self, rules, AnalysisReport, Diagnostic, OpSpan};
use npu_sim::{EngineScratch, PreparedSimulator, SimulationResult, Simulator, TraceRecorder};
use serde::{Deserialize, Serialize};

use crate::batch::BatchPolicy;

/// One request's observed serving lifecycle, in cycles on the trace clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// When the request arrived.
    pub arrival_cycle: u64,
    /// When its batch closed and was handed to the scheduler.
    pub dispatch_cycle: u64,
    /// When its batch's last operator (the merge) finished.
    pub completion_cycle: u64,
    /// Index of the batch that carried it.
    pub batch: usize,
}

impl RequestRecord {
    /// Arrival-to-completion latency.
    #[must_use]
    pub fn latency_cycles(&self) -> u64 {
        self.completion_cycle.saturating_sub(self.arrival_cycle)
    }

    /// Time spent queued before the batch closed.
    #[must_use]
    pub fn queueing_cycles(&self) -> u64 {
        self.dispatch_cycle.saturating_sub(self.arrival_cycle)
    }

    /// Time from batch dispatch to completion (service, including any
    /// wait for chip resources held by earlier batches).
    #[must_use]
    pub fn service_cycles(&self) -> u64 {
        self.completion_cycle.saturating_sub(self.dispatch_cycle)
    }
}

/// One batch as it was scheduled: request range, operator range in the
/// combined graph, dispatch and completion times.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BatchRecord {
    /// Requests the batch carried (indices into the arrival trace).
    pub requests: std::ops::Range<usize>,
    /// Operator-id range of the batch's subgraph in the combined graph.
    pub ops: std::ops::Range<usize>,
    /// Cycle the batch closed (the release of all its operators).
    pub dispatch_cycle: u64,
    /// Cycle its last scheduled anchor finished.
    pub completion_cycle: u64,
}

/// Hit/miss counters of the serving simulator's two compile caches —
/// the per-request-count batch templates and the per-batch-shape
/// prepared traces. A snapshot, monotone over a simulator's (and its
/// clones') lifetime: subtract two snapshots to count one sweep's work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct ServingCacheCounters {
    /// Batch-template lookups served from the cache.
    pub batch_hits: u64,
    /// Batch-template lookups that paid lowering + compilation.
    pub batch_misses: u64,
    /// Prepared-trace lookups served from the cache.
    pub trace_hits: u64,
    /// Prepared-trace lookups that paid concatenation + preparation.
    pub trace_misses: u64,
}

/// The live atomic cells behind [`ServingCacheCounters`], shared by
/// simulator clones exactly like the caches they count.
#[derive(Debug, Default)]
struct CacheCounterCells {
    batch_hits: AtomicU64,
    batch_misses: AtomicU64,
    trace_hits: AtomicU64,
    trace_misses: AtomicU64,
}

impl CacheCounterCells {
    fn snapshot(&self) -> ServingCacheCounters {
        ServingCacheCounters {
            batch_hits: self.batch_hits.load(Ordering::Relaxed),
            batch_misses: self.batch_misses.load(Ordering::Relaxed),
            trace_hits: self.trace_hits.load(Ordering::Relaxed),
            trace_misses: self.trace_misses.load(Ordering::Relaxed),
        }
    }
}

/// Everything one serving run produced: the scheduled trace plus the
/// per-request and per-batch accounting derived from it.
#[derive(Debug, Clone)]
pub struct ServingOutcome {
    /// Per-request workload (its batch is the samples *per request*).
    pub workload: Workload,
    /// Chips in the deployment.
    pub num_chips: usize,
    /// Parallelism every batch was lowered under.
    pub parallelism: ParallelismConfig,
    /// The combined compiled graph (all batches). Shared with the
    /// simulator's trace cache when the cached path produced it, so
    /// repeated runs of one batch shape don't duplicate the graph.
    pub compiled: Arc<CompiledGraph>,
    /// The scheduled trace (releases honoured, gaps on the timeline).
    pub simulation: SimulationResult,
    /// Per-batch schedule records, in dispatch order.
    pub batches: Vec<BatchRecord>,
    /// Per-request records, in arrival order.
    pub requests: Vec<RequestRecord>,
    /// Compile-cache counters snapshot taken when the run finished.
    pub cache: ServingCacheCounters,
}

impl ServingOutcome {
    /// Total samples served over the trace.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.workload.batch() * self.requests.len() as u64
    }

    /// The workload resized to the whole trace — what
    /// [`regate::Evaluator::evaluate_compiled`] needs so `work_items`
    /// describes every request served.
    #[must_use]
    pub fn total_workload(&self) -> Workload {
        self.workload.with_batch(self.total_samples().max(1))
    }

    /// Makespan of the scheduled trace in cycles.
    #[must_use]
    pub fn makespan_cycles(&self) -> u64 {
        self.simulation.total_cycles()
    }

    /// Runs the static analyzer over the scheduled trace: the compiled
    /// graph's DAG rules plus the serving-record sanity checks — batch
    /// dispatch monotonicity (the admission queue is FIFO), causality
    /// (no batch dispatches before its requests arrive, nothing completes
    /// before it dispatches), operator ranges that tile the combined
    /// graph, and request conservation (every request in exactly one
    /// batch). Spans of record-level diagnostics are request/batch
    /// indices. [`ServingSimulator::verify`] adds the makespan-window
    /// containment check on top.
    #[must_use]
    pub fn analyze(&self) -> AnalysisReport {
        let mut report = AnalysisReport::new();
        report.extend(analysis::check_compiled_graph(&self.compiled));
        report.extend(self.trace_diagnostics());
        report
    }

    /// The serving-record half of [`ServingOutcome::analyze`].
    fn trace_diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let mut previous_dispatch = 0u64;
        let mut previous_ops_end = 0usize;
        let mut previous_requests_end = 0usize;
        for (index, batch) in self.batches.iter().enumerate() {
            if batch.dispatch_cycle < previous_dispatch {
                out.push(Diagnostic::deny(
                    rules::SERVE_RELEASE_REGRESSION,
                    Some(OpSpan::single(index)),
                    format!(
                        "batch {index} dispatches at cycle {}, before batch {}'s dispatch at \
                         {previous_dispatch} — the FIFO admission order is violated",
                        batch.dispatch_cycle,
                        index.wrapping_sub(1)
                    ),
                ));
            }
            if batch.completion_cycle < batch.dispatch_cycle {
                out.push(Diagnostic::deny(
                    rules::SERVE_COMPLETION_BEFORE_DISPATCH,
                    Some(OpSpan::single(index)),
                    format!(
                        "batch {index} completes at cycle {} but dispatched at {}",
                        batch.completion_cycle, batch.dispatch_cycle
                    ),
                ));
            }
            if batch.ops.is_empty()
                || batch.ops.start != previous_ops_end
                || batch.ops.end > self.compiled.len()
            {
                out.push(Diagnostic::deny(
                    rules::SERVE_SPAN_OUT_OF_RANGE,
                    Some(OpSpan::single(index)),
                    format!(
                        "batch {index} covers ops {}..{} in a {}-op combined graph (previous \
                         batch ended at {previous_ops_end})",
                        batch.ops.start,
                        batch.ops.end,
                        self.compiled.len()
                    ),
                ));
            }
            if batch.requests.start != previous_requests_end || batch.requests.is_empty() {
                out.push(Diagnostic::deny(
                    rules::SERVE_BATCH_NOT_CONSERVED,
                    Some(OpSpan::single(index)),
                    format!(
                        "batch {index} carries requests {}..{} (previous batch ended at \
                         {previous_requests_end}) — requests must partition the trace in order",
                        batch.requests.start, batch.requests.end
                    ),
                ));
            }
            previous_dispatch = previous_dispatch.max(batch.dispatch_cycle);
            previous_ops_end = batch.ops.end.max(previous_ops_end);
            previous_requests_end = batch.requests.end.max(previous_requests_end);
        }
        if previous_ops_end != self.compiled.len() {
            out.push(Diagnostic::deny(
                rules::SERVE_SPAN_OUT_OF_RANGE,
                None,
                format!(
                    "batch subgraphs cover ops 0..{previous_ops_end} but the combined graph \
                     has {} operators",
                    self.compiled.len()
                ),
            ));
        }
        if previous_requests_end != self.requests.len() {
            out.push(Diagnostic::deny(
                rules::SERVE_BATCH_NOT_CONSERVED,
                None,
                format!(
                    "batches carry {previous_requests_end} requests but the trace served {}",
                    self.requests.len()
                ),
            ));
        }
        for (index, request) in self.requests.iter().enumerate() {
            if request.dispatch_cycle < request.arrival_cycle {
                out.push(Diagnostic::deny(
                    rules::SERVE_DISPATCH_BEFORE_ARRIVAL,
                    Some(OpSpan::single(index)),
                    format!(
                        "request {index} dispatched at cycle {} but arrived at {}",
                        request.dispatch_cycle, request.arrival_cycle
                    ),
                ));
            }
            if request.completion_cycle < request.dispatch_cycle {
                out.push(Diagnostic::deny(
                    rules::SERVE_COMPLETION_BEFORE_DISPATCH,
                    Some(OpSpan::single(index)),
                    format!(
                        "request {index} completes at cycle {} but dispatched at {}",
                        request.completion_cycle, request.dispatch_cycle
                    ),
                ));
            }
            if request.batch >= self.batches.len()
                || !self.batches[request.batch].requests.contains(&index)
            {
                out.push(Diagnostic::deny(
                    rules::SERVE_BATCH_NOT_CONSERVED,
                    Some(OpSpan::single(index)),
                    format!(
                        "request {index} claims batch {}, which does not carry it",
                        request.batch
                    ),
                ));
            }
        }
        out
    }

    /// Duty cycle *measured* from the schedule: the fraction of the
    /// makespan during which at least one real component (SA, VU, SRAM,
    /// HBM, ICI, DMA — everything but the always-on peripheral track) is
    /// busy. At saturating load this approaches 1; at low offered load it
    /// falls toward the paper's fleet average and below, which is the
    /// cross-check for the §3 out-of-duty-cycle leakage term.
    ///
    /// A zero-cycle makespan (a degenerate schedule with no timeline at
    /// all) reports 0.0: an empty makespan has no busy cycles, so it must
    /// not masquerade as a saturated deployment.
    #[must_use]
    pub fn measured_duty_cycle(&self) -> f64 {
        let total = self.simulation.total_cycles();
        if total == 0 {
            return 0.0;
        }
        let busy = self.simulation.busy_timeline().union_busy_cycles(&ComponentKind::GATEABLE);
        busy as f64 / total as f64
    }
}

/// One batch shape's trace, prepared for replay: the concatenated
/// compiled graph plus the release-independent simulator state. Only the
/// release cycles change between runs that form the same batch sizes.
#[derive(Debug)]
struct PreparedTrace {
    compiled: Arc<CompiledGraph>,
    prepared: PreparedSimulator,
    /// Anchor position (timings index) of each op id.
    positions: Vec<usize>,
    /// Op-id range of each batch's subgraph in the combined graph.
    op_ranges: Vec<std::ops::Range<usize>>,
}

/// Simulates a request-serving NPU deployment: one chip model, one
/// parallelism, an arrival trace in, a scheduled timeline out.
///
/// Lowering, fusion, compilation, SRAM allocation, and dependency
/// flattening are all release-independent, so the simulator caches them at
/// two levels keyed by batch shape: per *request count* (one compiled
/// batch subgraph each) and per *batch-size sequence* (the concatenated
/// graph prepared for replay). A sweep that forms the same batch sizes
/// across many arrival seeds or load points pays the compile path once and
/// then only re-runs the event loop. Clones share the caches (and the
/// engine scratch buffers) through `Arc`.
#[derive(Debug, Clone)]
pub struct ServingSimulator {
    chip: ChipConfig,
    parallelism: ParallelismConfig,
    workload: Workload,
    compiler: Compiler,
    /// Request count → compiled batch subgraph (keyed lookups only).
    batch_cache: Arc<Mutex<HashMap<usize, Arc<CompiledGraph>>>>, // lint:allow(hash-iter)
    /// Batch-size sequence → prepared trace (keyed lookups only).
    trace_cache: Arc<Mutex<HashMap<Vec<usize>, Arc<PreparedTrace>>>>, // lint:allow(hash-iter)
    /// Reused event-loop buffers for the cached path.
    scratch: Arc<Mutex<EngineScratch>>,
    /// Hit/miss counters of both caches, shared like the caches.
    cache_counters: Arc<CacheCounterCells>,
}

impl ServingSimulator {
    /// Creates a serving simulator. `workload.batch()` is the number of
    /// samples *one request* carries (e.g. 1 for a single recommendation
    /// query, the decode batch share of one sequence, …) and must be at
    /// least 1. The parallelism is the workload's default for the
    /// deployment size.
    ///
    /// # Panics
    ///
    /// Panics if the workload carries zero samples per request.
    #[must_use]
    pub fn new(generation: NpuGeneration, num_chips: usize, workload: Workload) -> Self {
        let chip = ChipConfig::new(generation, num_chips);
        let parallelism = workload
            .default_parallelism(chip.spec(), num_chips)
            .unwrap_or_else(|| ParallelismConfig::new(num_chips, 1, 1));
        Self::with_parallelism(generation, num_chips, workload, parallelism)
    }

    /// Like [`ServingSimulator::new`] with an explicit parallelism.
    ///
    /// # Panics
    ///
    /// Panics if the workload carries zero samples per request.
    #[must_use]
    pub fn with_parallelism(
        generation: NpuGeneration,
        num_chips: usize,
        workload: Workload,
        parallelism: ParallelismConfig,
    ) -> Self {
        assert!(workload.batch() >= 1, "a request must carry at least one sample");
        let chip = ChipConfig::new(generation, num_chips);
        let compiler = Compiler::new(chip.spec().clone());
        ServingSimulator {
            chip,
            parallelism,
            workload,
            compiler,
            batch_cache: Arc::default(),
            trace_cache: Arc::default(),
            scratch: Arc::default(),
            cache_counters: Arc::default(),
        }
    }

    /// A snapshot of the compile-cache hit/miss counters, cumulative over
    /// this simulator and every clone sharing its caches.
    #[must_use]
    pub fn cache_counters(&self) -> ServingCacheCounters {
        self.cache_counters.snapshot()
    }

    /// The chip deployment being simulated.
    #[must_use]
    pub fn chip(&self) -> &ChipConfig {
        &self.chip
    }

    /// The parallelism every batch is lowered under.
    #[must_use]
    pub fn parallelism(&self) -> &ParallelismConfig {
        &self.parallelism
    }

    /// The per-request workload.
    #[must_use]
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// Serves an arrival trace under a batching policy, reusing the
    /// compiled-graph and prepared-simulator caches: the first run of a
    /// batch shape pays lowering/fusion/compilation/allocation, repeated
    /// shapes only replay the event loop with new release cycles. The
    /// schedule is bit-for-bit identical to
    /// [`ServingSimulator::run_uncached`] (pinned by the
    /// `serving_invariants` corpus test).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or not sorted in non-decreasing order
    /// (the [`BatchPolicy::form`] contract).
    #[must_use]
    pub fn run(&self, arrivals: &[u64], policy: &BatchPolicy) -> ServingOutcome {
        assert!(!arrivals.is_empty(), "an empty arrival trace serves nothing");
        let formed = policy.form(arrivals);
        let shape: Vec<usize> = formed.iter().map(crate::batch::FormedBatch::len).collect();
        let trace = self.prepared_trace(&shape, arrivals.len());
        let (op_releases, batches) = Self::release_plan(&formed, &trace);

        let simulation = trace
            .prepared
            .run_with_scratch(&op_releases, &mut self.scratch.lock().expect("engine scratch"));
        self.finish(arrivals, Arc::clone(&trace.compiled), &trace.positions, simulation, batches)
    }

    /// Like [`ServingSimulator::run`], but observes the replay with a
    /// [`TraceRecorder`] and returns it alongside the outcome: every
    /// resource occupancy as a display-track slice plus one flow event
    /// per dispatched batch. The schedule itself is bit-identical to the
    /// unobserved [`ServingSimulator::run`] — observers never influence
    /// the engine.
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or not sorted in non-decreasing order
    /// (the [`BatchPolicy::form`] contract).
    #[must_use]
    pub fn run_traced(
        &self,
        arrivals: &[u64],
        policy: &BatchPolicy,
    ) -> (ServingOutcome, TraceRecorder) {
        assert!(!arrivals.is_empty(), "an empty arrival trace serves nothing");
        let formed = policy.form(arrivals);
        let shape: Vec<usize> = formed.iter().map(crate::batch::FormedBatch::len).collect();
        let trace = self.prepared_trace(&shape, arrivals.len());
        let (op_releases, batches) = Self::release_plan(&formed, &trace);

        let mut recorder = TraceRecorder::for_set(&trace.prepared.resources());
        let simulation = trace.prepared.run_with_scratch_observed(
            &op_releases,
            &mut self.scratch.lock().expect("engine scratch"),
            &mut recorder,
        );
        let outcome = self.finish(
            arrivals,
            Arc::clone(&trace.compiled),
            &trace.positions,
            simulation,
            batches,
        );
        for (index, batch) in outcome.batches.iter().enumerate() {
            recorder.add_batch_flow(index, batch.dispatch_cycle, batch.completion_cycle);
        }
        (outcome, recorder)
    }

    /// The release vector and batch records of one formed trace against
    /// its prepared shape. A batch's operators all carry its dispatch
    /// cycle: every request span shares the batch dispatch, and the
    /// merge's release is the maximum over the spans — the same value.
    fn release_plan(
        formed: &[crate::batch::FormedBatch],
        trace: &PreparedTrace,
    ) -> (Vec<u64>, Vec<BatchRecord>) {
        let mut op_releases: Vec<u64> = Vec::with_capacity(trace.positions.len());
        let mut batches: Vec<BatchRecord> = Vec::with_capacity(formed.len());
        for (batch, range) in formed.iter().zip(&trace.op_ranges) {
            debug_assert_eq!(op_releases.len(), range.start, "batch subgraphs are contiguous");
            op_releases.resize(range.end, batch.dispatch_cycle);
            batches.push(BatchRecord {
                requests: batch.requests.clone(),
                ops: range.clone(),
                dispatch_cycle: batch.dispatch_cycle,
                completion_cycle: 0,
            });
        }
        (op_releases, batches)
    }

    /// Serves an arrival trace by lowering and compiling every batch from
    /// scratch — the pre-cache path, kept as the correctness baseline the
    /// cached [`ServingSimulator::run`] is digest-compared against (and
    /// benchmarked against in `BENCH_serving.json`).
    ///
    /// # Panics
    ///
    /// Panics if the trace is empty or not sorted in non-decreasing order
    /// (the [`BatchPolicy::form`] contract).
    #[must_use]
    pub fn run_uncached(&self, arrivals: &[u64], policy: &BatchPolicy) -> ServingOutcome {
        assert!(!arrivals.is_empty(), "an empty arrival trace serves nothing");
        let formed = policy.form(arrivals);

        // Lower every batch through the request-graph path and concatenate
        // the subgraphs; no cross-batch edges exist, so only release times
        // and resource contention order the batches on the timeline.
        let mut combined = OperatorGraph::new(format!(
            "{}-serving-{}req-{}",
            self.workload.label(),
            arrivals.len(),
            self.parallelism
        ));
        let mut op_releases: Vec<u64> = Vec::new();
        let mut batches: Vec<BatchRecord> = Vec::with_capacity(formed.len());
        for batch in &formed {
            let samples = self.workload.batch() * batch.len() as u64;
            let releases = vec![batch.dispatch_cycle; batch.len()];
            let request_graph = self
                .workload
                .with_batch(samples)
                .try_build_request_graph(&self.parallelism, &releases)
                .expect("a formed batch has >= 1 request and >= 1 sample");
            let range = combined.extend_from(&request_graph.graph);
            op_releases.extend(request_graph.op_releases());
            batches.push(BatchRecord {
                requests: batch.requests.clone(),
                ops: range,
                dispatch_cycle: batch.dispatch_cycle,
                completion_cycle: 0,
            });
        }

        let compiled = self.compiler.compile(&combined);
        let simulation =
            Simulator::new(self.chip.clone()).run_with_releases(&compiled, &op_releases);
        let positions = compiled.anchor_positions();
        self.finish(arrivals, Arc::new(compiled), &positions, simulation, batches)
    }

    /// The compiled subgraph of one batch of `num_requests` requests.
    /// Release-independent: the request-graph builder's structure depends
    /// only on the request count (releases populate span metadata), so one
    /// compilation serves every batch of this size.
    fn batch_template(&self, num_requests: usize) -> Arc<CompiledGraph> {
        if let Some(template) = self.batch_cache.lock().expect("batch cache").get(&num_requests) {
            self.cache_counters.batch_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(template);
        }
        self.cache_counters.batch_misses.fetch_add(1, Ordering::Relaxed);
        let samples = self.workload.batch() * num_requests as u64;
        let releases = vec![0u64; num_requests];
        let request_graph = self
            .workload
            .with_batch(samples)
            .try_build_request_graph(&self.parallelism, &releases)
            .expect("a formed batch has >= 1 request and >= 1 sample");
        let compiled = Arc::new(self.compiler.compile(&request_graph.graph));
        // A racing clone may have built the same template meanwhile; both
        // computed identical graphs, so first insert wins.
        Arc::clone(
            self.batch_cache.lock().expect("batch cache").entry(num_requests).or_insert(compiled),
        )
    }

    /// The prepared trace of one batch-size sequence: per-batch compiled
    /// templates concatenated (compilation is edge-local, so this equals
    /// compiling the concatenated operator graph — pinned by the
    /// `concatenating_compiled_subgraphs_matches_compiling_the_concatenation`
    /// test) and prepared for release-vector replay.
    fn prepared_trace(&self, shape: &[usize], num_requests: usize) -> Arc<PreparedTrace> {
        if let Some(trace) = self.trace_cache.lock().expect("trace cache").get(shape) {
            self.cache_counters.trace_hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(trace);
        }
        self.cache_counters.trace_misses.fetch_add(1, Ordering::Relaxed);
        let mut combined = CompiledGraph::empty(format!(
            "{}-serving-{num_requests}req-{}",
            self.workload.label(),
            self.parallelism
        ));
        let mut op_ranges = Vec::with_capacity(shape.len());
        for &count in shape {
            let template = self.batch_template(count);
            op_ranges.push(combined.extend_from(&template));
        }
        let prepared = Simulator::new(self.chip.clone()).prepare(&combined);
        let positions = combined.anchor_positions();
        let trace = Arc::new(PreparedTrace {
            compiled: Arc::new(combined),
            prepared,
            positions,
            op_ranges,
        });
        Arc::clone(
            self.trace_cache.lock().expect("trace cache").entry(shape.to_vec()).or_insert(trace),
        )
    }

    /// The full static verdict on one serving outcome: the outcome's own
    /// record checks ([`ServingOutcome::analyze`]) plus the phase-level
    /// analyzer on the prepared trace — which brackets the *measured*
    /// makespan inside the static `[critical path, serial sum]` window
    /// and audits the SRAM allocation — without re-running the schedule.
    /// Cached trace preparations make this cheap in a sweep.
    #[must_use]
    pub fn verify(&self, outcome: &ServingOutcome) -> AnalysisReport {
        let mut report = outcome.analyze();
        let shape: Vec<usize> = outcome.batches.iter().map(|b| b.requests.len()).collect();
        if shape.is_empty() || !report.is_schedulable() {
            return report;
        }
        let trace = self.prepared_trace(&shape, outcome.requests.len());
        let mut op_releases: Vec<u64> = Vec::with_capacity(trace.positions.len());
        for (batch, range) in outcome.batches.iter().zip(&trace.op_ranges) {
            op_releases.resize(range.end, batch.dispatch_cycle);
        }
        report.merge(trace.prepared.analyze(&op_releases, Some(outcome.makespan_cycles())));
        report
    }

    /// Shared post-processing of a scheduled trace: per-batch completion
    /// times and per-request records.
    fn finish(
        &self,
        arrivals: &[u64],
        compiled: Arc<CompiledGraph>,
        positions: &[usize],
        simulation: SimulationResult,
        mut batches: Vec<BatchRecord>,
    ) -> ServingOutcome {
        // Batch completion: the latest finish among the anchors executing
        // the batch's operators (its merge fans in over every sink, so in
        // practice this is the merge's finish).
        let timings = simulation.timings();
        for record in &mut batches {
            record.completion_cycle = record
                .ops
                .clone()
                .map(|id| {
                    let t = &timings[positions[id]];
                    t.start_cycle + t.duration_cycles
                })
                .max()
                .expect("a batch subgraph is never empty");
        }

        let mut requests = Vec::with_capacity(arrivals.len());
        for (batch_index, record) in batches.iter().enumerate() {
            for r in record.requests.clone() {
                requests.push(RequestRecord {
                    arrival_cycle: arrivals[r],
                    dispatch_cycle: record.dispatch_cycle,
                    completion_cycle: record.completion_cycle,
                    batch: batch_index,
                });
            }
        }

        ServingOutcome {
            workload: self.workload,
            num_chips: self.chip.num_chips(),
            parallelism: self.parallelism,
            compiled,
            simulation,
            batches,
            requests,
            cache: self.cache_counters.snapshot(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchPolicy;
    use npu_models::{DlrmSize, Workload};
    use npu_sim::Severity;

    fn outcome_and_simulator() -> (ServingSimulator, ServingOutcome) {
        let simulator = ServingSimulator::new(
            NpuGeneration::D,
            1,
            Workload::dlrm(DlrmSize::Small).with_batch(8),
        );
        let arrivals = [0u64, 1_000, 350_000, 360_000, 900_000];
        let outcome = simulator.run(&arrivals, &BatchPolicy::Static { batch: 2 });
        (simulator, outcome)
    }

    #[test]
    fn measured_duty_cycle_is_a_fraction_and_zero_on_an_empty_makespan() {
        let (_, outcome) = outcome_and_simulator();
        let duty = outcome.measured_duty_cycle();
        assert!(duty > 0.0 && duty <= 1.0, "duty cycle {duty} must be a fraction of the makespan");

        // Regression: a zero-cycle makespan used to report 1.0 — a
        // schedule with no timeline masqueraded as a saturated one.
        let chip = ChipConfig::new(NpuGeneration::D, 1);
        let empty = ServingOutcome {
            simulation: Simulator::new(chip).run(&CompiledGraph::empty("empty")),
            compiled: Arc::new(CompiledGraph::empty("empty")),
            batches: Vec::new(),
            requests: Vec::new(),
            ..outcome
        };
        assert_eq!(empty.makespan_cycles(), 0);
        assert_eq!(empty.measured_duty_cycle(), 0.0);
    }

    #[test]
    fn clean_serving_outcome_passes_analysis_and_verification() {
        let (simulator, outcome) = outcome_and_simulator();
        let report = outcome.analyze();
        assert!(report.is_schedulable(), "{}", report.render());
        let verified = simulator.verify(&outcome);
        assert!(verified.is_schedulable(), "{}", verified.render());
        let window = verified.makespan_window.expect("verification brackets the makespan");
        assert!(window.contains(outcome.makespan_cycles()));
    }

    #[test]
    fn cache_counters_accumulate_and_traced_replay_matches_unobserved() {
        let (simulator, outcome) = outcome_and_simulator();
        // Shape [2, 2, 1]: the 2-request template misses then hits, the
        // 1-request template misses, the trace shape misses.
        assert_eq!(outcome.cache.batch_misses, 2);
        assert_eq!(outcome.cache.batch_hits, 1);
        assert_eq!(outcome.cache.trace_misses, 1);
        assert_eq!(outcome.cache.trace_hits, 0);

        let arrivals = [0u64, 1_000, 350_000, 360_000, 900_000];
        let (traced, recorder) = simulator.run_traced(&arrivals, &BatchPolicy::Static { batch: 2 });
        // The same shape again: a pure prepared-trace hit.
        assert_eq!(traced.cache.trace_hits, 1);
        assert_eq!(traced.cache.trace_misses, 1);

        // The observer never influences the schedule, and the recorder
        // carries one flow per dispatched batch.
        assert_eq!(traced.makespan_cycles(), outcome.makespan_cycles());
        assert_eq!(traced.simulation.counters(), outcome.simulation.counters());
        assert!(traced.simulation.counters().events_popped > 0);
        assert!(recorder.num_slices() > 0);
        let json = recorder.chrome_json();
        for index in 0..traced.batches.len() {
            assert!(json.contains(&format!("\"batch{index}\"")), "missing flow {index}");
        }
    }

    #[test]
    fn corrupted_serving_records_are_denied() {
        let (_, mut outcome) = outcome_and_simulator();

        // Batch dispatch regression + a request dispatched before arrival.
        let last = outcome.batches.len() - 1;
        outcome.batches[last].dispatch_cycle = 0;
        outcome.requests[0].dispatch_cycle = 0;
        outcome.requests[0].arrival_cycle = 10;
        let report = outcome.analyze();
        assert!(report.denials().any(|d| d.rule_id == rules::SERVE_RELEASE_REGRESSION));
        assert!(report.denials().any(|d| d.rule_id == rules::SERVE_DISPATCH_BEFORE_ARRIVAL));

        // A batch that completes before it dispatches and ops that no
        // longer tile the combined graph.
        let (_, mut outcome) = outcome_and_simulator();
        outcome.batches[0].completion_cycle = 0;
        outcome.batches[0].dispatch_cycle = 99;
        outcome.batches[0].ops.end -= 1;
        let report = outcome.analyze();
        assert!(report.denials().any(|d| d.rule_id == rules::SERVE_COMPLETION_BEFORE_DISPATCH));
        assert!(report.denials().any(|d| d.rule_id == rules::SERVE_SPAN_OUT_OF_RANGE));

        // A request claiming a batch that does not carry it.
        let (_, mut outcome) = outcome_and_simulator();
        outcome.requests[0].batch = outcome.batches.len() - 1;
        let report = outcome.analyze();
        assert!(report.denials().any(|d| d.rule_id == rules::SERVE_BATCH_NOT_CONSERVED));
        assert!(report.denials().all(|d| d.severity == Severity::Deny));
    }
}
