//! Request queue and pluggable batch-formation policies.
//!
//! Requests are served FIFO: a policy walks the arrival trace in order and
//! decides when the open batch *closes* (dispatches). Two policies cover
//! the production spectrum:
//!
//! * [`BatchPolicy::Static`] — the classic fixed-batch server: dispatch
//!   the moment `batch` requests are queued (the trailing partial batch
//!   flushes at the last arrival).
//! * [`BatchPolicy::DynamicWindow`] — continuous-batching style: a batch
//!   closes on max-batch **or** deadline, whichever comes first, bounding
//!   the queueing delay the first request of a window can suffer.
//!
//! Formation is a pure function of the arrival trace, so a seeded trace
//! yields a bit-for-bit reproducible batch sequence.

use serde::{Deserialize, Serialize};

/// How queued requests are grouped into dispatchable batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BatchPolicy {
    /// Dispatch every `batch` requests; the trailing partial batch
    /// flushes at the final arrival.
    Static {
        /// Requests per batch (at least 1).
        batch: usize,
    },
    /// Dispatch when `max_batch` requests are queued or when the oldest
    /// queued request has waited `max_wait_cycles`, whichever is first.
    /// The trailing partial batch flushes at its last arrival (no one can
    /// join a window after the trace is exhausted).
    DynamicWindow {
        /// Largest batch the window may close with (at least 1).
        max_batch: usize,
        /// Longest the first request of a window waits before the batch
        /// closes regardless of occupancy.
        max_wait_cycles: u64,
    },
}

impl BatchPolicy {
    /// Short label for sweep tables, e.g. `"static-8"`, `"window-8/5000"`.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            BatchPolicy::Static { batch } => format!("static-{batch}"),
            BatchPolicy::DynamicWindow { max_batch, max_wait_cycles } => {
                format!("window-{max_batch}/{max_wait_cycles}")
            }
        }
    }

    /// Groups a non-decreasing arrival trace into dispatchable batches,
    /// FIFO. Every request lands in exactly one batch, batches are
    /// contiguous index ranges, and each dispatch cycle is at least every
    /// member's arrival (a batch cannot ship requests that do not exist).
    ///
    /// # Panics
    ///
    /// Panics if the arrivals are not sorted in non-decreasing order.
    #[must_use]
    pub fn form(&self, arrivals: &[u64]) -> Vec<FormedBatch> {
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]), "arrival trace must be non-decreasing");
        let n = arrivals.len();
        let mut batches = Vec::new();
        match *self {
            BatchPolicy::Static { batch } => {
                let batch = batch.max(1);
                let mut start = 0usize;
                while start < n {
                    let end = (start + batch).min(n);
                    batches.push(FormedBatch {
                        requests: start..end,
                        dispatch_cycle: arrivals[end - 1],
                    });
                    start = end;
                }
            }
            BatchPolicy::DynamicWindow { max_batch, max_wait_cycles } => {
                let max_batch = max_batch.max(1);
                let mut start = 0usize;
                while start < n {
                    let deadline = arrivals[start].saturating_add(max_wait_cycles);
                    let mut end = start + 1;
                    while end < n && end - start < max_batch && arrivals[end] <= deadline {
                        end += 1;
                    }
                    // A full window closes the instant its last member
                    // arrives; a window that timed out mid-trace closes at
                    // the deadline even if the queue has gone quiet. The
                    // *trailing* window can never be joined by anyone —
                    // the trace is exhausted — so it flushes at its last
                    // arrival (matching `Static`'s trailing-flush
                    // semantics) instead of waiting out a deadline nothing
                    // can beat.
                    let dispatch_cycle = if end - start == max_batch || end == n {
                        arrivals[end - 1]
                    } else {
                        deadline
                    };
                    batches.push(FormedBatch { requests: start..end, dispatch_cycle });
                    start = end;
                }
            }
        }
        batches
    }
}

/// One dispatched batch: which requests (FIFO index range into the
/// arrival trace) and when it closed.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FormedBatch {
    /// Half-open range of request indices the batch carries.
    pub requests: std::ops::Range<usize>,
    /// Cycle the batch closed and was handed to the scheduler — the
    /// release cycle of every operator lowered from it.
    pub dispatch_cycle: u64,
}

impl FormedBatch {
    /// Number of requests in the batch.
    #[must_use]
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// Whether the batch is empty (never produced by a policy).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_policy_chunks_fifo_and_flushes_the_tail() {
        let arrivals = [0, 10, 20, 30, 40, 50, 60];
        let batches = BatchPolicy::Static { batch: 3 }.form(&arrivals);
        assert_eq!(batches.len(), 3);
        assert_eq!(batches[0], FormedBatch { requests: 0..3, dispatch_cycle: 20 });
        assert_eq!(batches[1], FormedBatch { requests: 3..6, dispatch_cycle: 50 });
        assert_eq!(batches[2], FormedBatch { requests: 6..7, dispatch_cycle: 60 });
    }

    #[test]
    fn window_closes_on_max_batch_or_deadline() {
        // Burst of 4 at t=0..30, then a straggler at t=10_000.
        let arrivals = [0, 10, 20, 30, 10_000];
        let batches =
            BatchPolicy::DynamicWindow { max_batch: 4, max_wait_cycles: 5_000 }.form(&arrivals);
        assert_eq!(batches.len(), 2);
        // The burst fills the window: closes at its 4th arrival, not the deadline.
        assert_eq!(batches[0], FormedBatch { requests: 0..4, dispatch_cycle: 30 });
        // The straggler is the trailing window: nothing can join it, so it
        // flushes at its own arrival instead of waiting out the deadline.
        assert_eq!(batches[1], FormedBatch { requests: 4..5, dispatch_cycle: 10_000 });
    }

    #[test]
    fn window_deadline_bounds_queueing_delay() {
        // Slow trickle: one request per 4,000 cycles, window of 8 with a
        // 1,000-cycle deadline -> every mid-trace request ships alone,
        // 1,000 cycles after it arrived; the trailing request flushes
        // immediately (the trace is exhausted).
        let arrivals: Vec<u64> = (0..5).map(|i| i * 4_000).collect();
        let batches =
            BatchPolicy::DynamicWindow { max_batch: 8, max_wait_cycles: 1_000 }.form(&arrivals);
        assert_eq!(batches.len(), 5);
        for (i, b) in batches.iter().enumerate().take(4) {
            assert_eq!(b.len(), 1);
            assert_eq!(b.dispatch_cycle, arrivals[i] + 1_000);
        }
        assert_eq!(batches[4], FormedBatch { requests: 4..5, dispatch_cycle: 16_000 });
    }

    #[test]
    fn trailing_window_flushes_at_trace_exhaustion_but_mid_trace_still_times_out() {
        // Regression: the trailing partial window used to wait the full
        // `max_wait_cycles` deadline even though the arrival trace was
        // exhausted, inflating tail queueing latency on every finite
        // trace.
        let arrivals = [0, 4_000, 4_100];
        let batches =
            BatchPolicy::DynamicWindow { max_batch: 3, max_wait_cycles: 1_000 }.form(&arrivals);
        assert_eq!(batches.len(), 2);
        // Mid-trace window: more arrivals exist beyond the deadline, so
        // the timeout semantics are unchanged.
        assert_eq!(batches[0], FormedBatch { requests: 0..1, dispatch_cycle: 1_000 });
        // Trailing window: flushes at its last arrival, not at 5_000.
        assert_eq!(batches[1], FormedBatch { requests: 1..3, dispatch_cycle: 4_100 });
    }

    #[test]
    fn every_request_lands_in_exactly_one_batch_with_dispatch_after_arrival() {
        let arrivals = [0u64, 0, 5, 5, 5, 100, 2_000, 2_001, 2_002, 9_999];
        for policy in [
            BatchPolicy::Static { batch: 4 },
            BatchPolicy::DynamicWindow { max_batch: 3, max_wait_cycles: 50 },
        ] {
            let batches = policy.form(&arrivals);
            let mut cursor = 0usize;
            for b in &batches {
                assert_eq!(b.requests.start, cursor, "{policy:?}: batches must be contiguous");
                cursor = b.requests.end;
                for r in b.requests.clone() {
                    assert!(
                        b.dispatch_cycle >= arrivals[r],
                        "{policy:?}: batch dispatched before request {r} arrived"
                    );
                }
            }
            assert_eq!(cursor, arrivals.len(), "{policy:?}: requests dropped");
        }
    }

    #[test]
    fn saturating_trace_forms_one_full_batch() {
        let arrivals = vec![0u64; 6];
        for policy in [
            BatchPolicy::Static { batch: 6 },
            BatchPolicy::DynamicWindow { max_batch: 6, max_wait_cycles: 10_000 },
        ] {
            let batches = policy.form(&arrivals);
            assert_eq!(batches.len(), 1, "{policy:?}");
            assert_eq!(batches[0], FormedBatch { requests: 0..6, dispatch_cycle: 0 }, "{policy:?}");
        }
    }

    #[test]
    fn empty_trace_forms_no_batches() {
        assert!(BatchPolicy::Static { batch: 4 }.form(&[]).is_empty());
        assert!(BatchPolicy::DynamicWindow { max_batch: 4, max_wait_cycles: 10 }
            .form(&[])
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unsorted_arrivals_are_rejected() {
        let _ = BatchPolicy::Static { batch: 2 }.form(&[10, 5]);
    }
}
