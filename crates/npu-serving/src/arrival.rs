//! Deterministic request arrival processes.
//!
//! ReGate's duty-cycle analysis (§3, Figure 3) charges a large share of
//! fleet energy to chips sitting idle *between* inferences, yet a
//! single-batch simulation never shows the gating model that idleness:
//! every request is ready at cycle 0. An [`ArrivalProcess`] generates the
//! missing input — a reproducible trace of request arrival cycles — so the
//! serving simulator can put real inter-request gaps on the timeline.
//!
//! All three processes are deterministic: the fixed-rate and bursty on/off
//! traces are pure functions of their parameters, and the Poisson trace is
//! seeded [`SplitMix64`] (inverse-CDF exponential gaps), so a load sweep
//! re-runs bit-for-bit.

use serde::{Deserialize, Serialize};

use npu_sim::rng::SplitMix64;

/// A deterministic generator of request arrival cycles.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Requests arrive every `interval_cycles` cycles (interval 0 is the
    /// saturating trace: everything ready at cycle 0, the classic
    /// single-batch view).
    FixedRate {
        /// Cycles between consecutive arrivals.
        interval_cycles: u64,
    },
    /// Memoryless arrivals: inter-arrival gaps drawn from an exponential
    /// distribution with the given mean, sampled by inverse CDF from a
    /// seeded [`SplitMix64`] stream.
    Poisson {
        /// Mean cycles between consecutive arrivals.
        mean_interval_cycles: f64,
        /// Seed of the deterministic gap stream.
        seed: u64,
    },
    /// On/off traffic: bursts of `burst_len` requests spaced
    /// `intra_burst_cycles` apart, separated by `off_cycles` of silence —
    /// the diurnal / batch-job shape that gives gating its longest
    /// inter-request intervals.
    BurstyOnOff {
        /// Requests per burst (at least 1).
        burst_len: usize,
        /// Cycles between arrivals inside a burst.
        intra_burst_cycles: u64,
        /// Idle cycles between the last arrival of a burst and the first
        /// of the next.
        off_cycles: u64,
    },
}

impl ArrivalProcess {
    /// The saturating trace: every request ready at cycle 0.
    #[must_use]
    pub fn saturating() -> Self {
        ArrivalProcess::FixedRate { interval_cycles: 0 }
    }

    /// Generates the first `count` arrival cycles (non-decreasing; the
    /// first request arrives at cycle 0 so a trace never opens with dead
    /// time that no policy could act on).
    #[must_use]
    pub fn arrivals(&self, count: usize) -> Vec<u64> {
        let mut out = Vec::with_capacity(count);
        match *self {
            ArrivalProcess::FixedRate { interval_cycles } => {
                for i in 0..count as u64 {
                    out.push(i * interval_cycles);
                }
            }
            ArrivalProcess::Poisson { mean_interval_cycles, seed } => {
                let mean = mean_interval_cycles.max(0.0);
                let mut rng = SplitMix64::new(seed);
                // Accumulate the arrival time in f64 and round the
                // *absolute* cycle. Rounding each exponential gap
                // independently biases the realized rate: for small means
                // most of the density sits below 0.5 and rounds to zero,
                // so the trace arrives faster than configured.
                let mut t = 0.0f64;
                for _ in 0..count {
                    out.push(t.round() as u64);
                    t += -mean * rng.unit_open().ln();
                }
            }
            ArrivalProcess::BurstyOnOff { burst_len, intra_burst_cycles, off_cycles } => {
                let burst_len = burst_len.max(1);
                let mut t = 0u64;
                for i in 0..count {
                    out.push(t);
                    t = t.saturating_add(if (i + 1) % burst_len == 0 {
                        off_cycles
                    } else {
                        intra_burst_cycles
                    });
                }
            }
        }
        out
    }

    /// Mean cycles between arrivals — the inverse of the offered load.
    /// Used to order load sweeps (smaller mean gap = higher load).
    #[must_use]
    pub fn mean_interval_cycles(&self) -> f64 {
        match *self {
            ArrivalProcess::FixedRate { interval_cycles } => interval_cycles as f64,
            ArrivalProcess::Poisson { mean_interval_cycles, .. } => mean_interval_cycles.max(0.0),
            ArrivalProcess::BurstyOnOff { burst_len, intra_burst_cycles, off_cycles } => {
                let burst_len = burst_len.max(1) as f64;
                ((burst_len - 1.0) * intra_burst_cycles as f64 + off_cycles as f64) / burst_len
            }
        }
    }

    /// Short label for sweep tables, e.g. `"fixed@2000"`, `"poisson@500"`.
    #[must_use]
    pub fn label(&self) -> String {
        match *self {
            ArrivalProcess::FixedRate { interval_cycles: 0 } => "saturating".to_string(),
            ArrivalProcess::FixedRate { interval_cycles } => format!("fixed@{interval_cycles}"),
            ArrivalProcess::Poisson { mean_interval_cycles, .. } => {
                format!("poisson@{mean_interval_cycles:.0}")
            }
            ArrivalProcess::BurstyOnOff { burst_len, off_cycles, .. } => {
                format!("bursty@{burst_len}x/off{off_cycles}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_rate_is_an_arithmetic_sequence() {
        let a = ArrivalProcess::FixedRate { interval_cycles: 250 }.arrivals(5);
        assert_eq!(a, vec![0, 250, 500, 750, 1000]);
        assert_eq!(ArrivalProcess::saturating().arrivals(4), vec![0, 0, 0, 0]);
    }

    #[test]
    fn poisson_is_seed_deterministic_and_nondecreasing() {
        let p = ArrivalProcess::Poisson { mean_interval_cycles: 1000.0, seed: 7 };
        let a = p.arrivals(200);
        let b = p.arrivals(200);
        assert_eq!(a, b, "same seed must reproduce the trace");
        assert_eq!(a[0], 0);
        assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals must be non-decreasing");
        let other = ArrivalProcess::Poisson { mean_interval_cycles: 1000.0, seed: 8 }.arrivals(200);
        assert_ne!(a, other, "different seeds must differ");
        // The empirical mean gap lands near the configured mean.
        let mean = *a.last().unwrap() as f64 / (a.len() - 1) as f64;
        assert!((600.0..1400.0).contains(&mean), "empirical mean gap {mean}");
    }

    #[test]
    fn poisson_small_mean_rate_is_unbiased() {
        // Regression: gaps used to be rounded independently, so for
        // sub-10-cycle means most gaps rounded to 0 and the realized rate
        // sat far above the configured one. Accumulating in f64 and
        // rounding the absolute cycle keeps the empirical mean gap within
        // 1% of the configured mean even at tiny means.
        for mean in [2.5, 4.0, 8.0] {
            let p = ArrivalProcess::Poisson { mean_interval_cycles: mean, seed: 12345 };
            let a = p.arrivals(40_001);
            let empirical = *a.last().unwrap() as f64 / (a.len() - 1) as f64;
            let error = (empirical - mean).abs() / mean;
            assert!(
                error < 0.01,
                "mean {mean}: empirical gap {empirical} off by {:.2}%",
                error * 100.0
            );
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "arrivals must stay non-decreasing");
        }
    }

    #[test]
    fn bursty_alternates_intra_burst_and_off_gaps() {
        let p = ArrivalProcess::BurstyOnOff {
            burst_len: 3,
            intra_burst_cycles: 10,
            off_cycles: 10_000,
        };
        let a = p.arrivals(7);
        assert_eq!(a, vec![0, 10, 20, 10_020, 10_030, 10_040, 20_040]);
        // Mean gap: (2*10 + 10_000) / 3.
        assert!((p.mean_interval_cycles() - 10_020.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn labels_name_the_process() {
        assert_eq!(ArrivalProcess::saturating().label(), "saturating");
        assert_eq!(ArrivalProcess::FixedRate { interval_cycles: 42 }.label(), "fixed@42");
        assert!(ArrivalProcess::Poisson { mean_interval_cycles: 500.0, seed: 1 }
            .label()
            .contains("poisson"));
    }
}
