//! # npu-serving — arrival-driven request serving on the event timeline
//!
//! ReGate's duty-cycle analysis (§3) shows production NPUs idle not only
//! *inside* an inference but *between* inferences; a single cycle-0 batch
//! simulation reduces that inter-request idleness to a closed-form scalar
//! the gating policies never see. This crate turns the simulator into a
//! request-serving system:
//!
//! * [`ArrivalProcess`] — deterministic request traces: fixed-rate,
//!   seeded-Poisson (via the shared [`npu_sim::rng::SplitMix64`]), and
//!   bursty on/off;
//! * [`BatchPolicy`] — FIFO batch formation: static batch-N and a dynamic
//!   window that closes on max-batch-or-deadline, the continuous-batching
//!   server shape;
//! * [`ServingSimulator`] — lowers each formed batch through the existing
//!   `Workload::try_build_request_graph` compiler path and schedules the
//!   whole trace on the timeline with **release times**, so queueing
//!   delay and inter-request gaps become first-class idle intervals that
//!   the unmodified interval-walking gating evaluator prices;
//! * [`ServingReport`] — p50/p99 latency, the queueing/service split,
//!   energy per request and savings per design as a function of offered
//!   load, and a *measured* duty cycle that reconciles the paper's
//!   out-of-duty-cycle scalar with what the schedule actually shows.
//!
//! At saturating load (all requests at cycle 0) the serving schedule
//! reproduces the classic single-batch run bit for bit; at low load the
//! long inter-request intervals are exactly what ReGate gates.
//!
//! ## Example
//!
//! ```
//! use npu_arch::NpuGeneration;
//! use npu_models::{DlrmSize, Workload};
//! use npu_serving::{ArrivalProcess, BatchPolicy, ServingReport, ServingSimulator};
//! use regate::{Design, Evaluator};
//!
//! // Each request is one 32-sample recommendation query.
//! let simulator = ServingSimulator::new(
//!     NpuGeneration::D,
//!     1,
//!     Workload::dlrm(DlrmSize::Small).with_batch(32),
//! );
//! let arrivals = ArrivalProcess::Poisson { mean_interval_cycles: 200_000.0, seed: 1 }.arrivals(8);
//! let outcome = simulator.run(&arrivals, &BatchPolicy::Static { batch: 4 });
//! assert_eq!(outcome.requests.len(), 8);
//! let report = ServingReport::evaluate(&outcome, &Evaluator::new(NpuGeneration::D));
//! assert!(report.p99_latency_cycles >= report.p50_latency_cycles);
//! assert!(report.design(Design::ReGateFull).savings > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod arrival;
pub mod batch;
pub mod report;
pub mod simulator;

pub use arrival::ArrivalProcess;
pub use batch::{BatchPolicy, FormedBatch};
pub use report::{DesignServingRow, ServingReport};
pub use simulator::{
    BatchRecord, RequestRecord, ServingCacheCounters, ServingOutcome, ServingSimulator,
};
