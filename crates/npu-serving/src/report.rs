//! Per-request latency and energy accounting over a serving trace.
//!
//! A [`ServingReport`] condenses one [`ServingOutcome`] into the numbers a
//! load sweep tabulates: latency percentiles, the queueing/service split,
//! the measured duty cycle, and — by handing the scheduled trace to the
//! unmodified interval-walking evaluator — energy per request and savings
//! for every ReGate design. The evaluator runs with `duty_cycle = 1.0`:
//! the trace *contains* its inter-request idleness, so the paper's scalar
//! out-of-duty-cycle term is replaced by measured gaps (and
//! [`ServingReport::measured_duty_cycle`] is the cross-check against the
//! fleet-average constant the single-batch path assumes).

use std::collections::BTreeMap;

use npu_arch::ComponentKind;
use npu_sim::RunCounters;
use regate::{Design, Evaluator, WorkloadEvaluation};
use serde::{Deserialize, Serialize};

use crate::simulator::{ServingCacheCounters, ServingOutcome};

/// Energy accounting of one design over the whole serving trace.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DesignServingRow {
    /// Per-chip energy over the trace (busy energy; the trace's idle gaps
    /// are priced inside it by the interval walk), in joules.
    pub total_j: f64,
    /// Deployment energy per served request, in joules. `None` when the
    /// trace served zero requests — the whole-trace energy is not a
    /// per-request figure, so an empty trace reports no value rather
    /// than a misleading one.
    pub energy_per_request_j: Option<f64>,
    /// Energy savings relative to `NoPG` over the same trace.
    pub savings: f64,
}

/// Latency/energy summary of one serving run.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Requests served.
    pub num_requests: usize,
    /// Batches dispatched.
    pub num_batches: usize,
    /// Trace makespan in cycles.
    pub makespan_cycles: u64,
    /// Median arrival-to-completion latency in cycles.
    pub p50_latency_cycles: u64,
    /// 99th-percentile arrival-to-completion latency in cycles.
    pub p99_latency_cycles: u64,
    /// Mean cycles a request waited for its batch to close.
    pub mean_queueing_cycles: f64,
    /// Mean cycles from batch dispatch to completion.
    pub mean_service_cycles: f64,
    /// Fraction of the makespan with at least one real component busy.
    pub measured_duty_cycle: f64,
    /// Fraction of the makespan inside whole-chip idle intervals (no
    /// component busy) at least as long as the chip-level break-even time
    /// — the share of the trace whole-chip gating could power off
    /// entirely, uncore included.
    pub whole_chip_idle_fraction: f64,
    /// Per-design energy rows.
    pub designs: BTreeMap<Design, DesignServingRow>,
    /// Engine run counters of the scheduled trace (events popped, heap
    /// peak, release-clamp stalls, …).
    pub engine_counters: RunCounters,
    /// Compile-cache hit/miss counters snapshot when the run finished.
    pub cache_counters: ServingCacheCounters,
    /// The full per-design evaluation the rows were derived from.
    pub evaluation: WorkloadEvaluation,
}

impl ServingReport {
    /// Evaluates a serving outcome across every design point.
    #[must_use]
    pub fn evaluate(outcome: &ServingOutcome, evaluator: &Evaluator) -> Self {
        let evaluation = evaluator.evaluate_compiled(
            &outcome.total_workload(),
            outcome.num_chips,
            outcome.parallelism,
            &outcome.compiled,
            outcome.simulation.clone(),
            // The trace holds its own idleness; see the module docs.
            1.0,
        );
        let num_requests = outcome.requests.len();
        let mut designs = BTreeMap::new();
        for design in Design::ALL {
            let total_j = evaluation.design(design).energy.total_j();
            designs.insert(
                design,
                DesignServingRow {
                    total_j,
                    energy_per_request_j: (num_requests > 0)
                        .then(|| total_j * outcome.num_chips as f64 / num_requests as f64),
                    savings: evaluation.energy_savings(design),
                },
            );
        }

        // Whole-chip gateable share: union-idle windows long enough for
        // the conservative chip-level break-even time (twice the slowest
        // component's, as in `regate::PolicyKind::WholeChipFull`).
        let gating = evaluator.gating();
        let chip_bet =
            2 * gating.sa_full_bet.max(gating.vu_bet).max(gating.hbm_bet).max(gating.ici_bet);
        let total_cycles = outcome.simulation.total_cycles();
        let gateable: u64 = outcome
            .simulation
            .busy_timeline()
            .union_idle_intervals(
                &[
                    ComponentKind::Sa,
                    ComponentKind::Vu,
                    ComponentKind::Hbm,
                    ComponentKind::Ici,
                    ComponentKind::Dma,
                ],
                total_cycles,
            )
            .iter()
            .filter(|iv| iv.len() >= chip_bet)
            .map(npu_sim::CycleInterval::len)
            .sum();
        let whole_chip_idle_fraction =
            if total_cycles == 0 { 0.0 } else { gateable as f64 / total_cycles as f64 };

        let mut latencies: Vec<u64> = outcome.requests.iter().map(|r| r.latency_cycles()).collect();
        latencies.sort_unstable();
        let mean = |values: &mut dyn Iterator<Item = u64>| -> f64 {
            let (mut sum, mut n) = (0u128, 0u64);
            for v in values {
                sum += u128::from(v);
                n += 1;
            }
            if n == 0 {
                0.0
            } else {
                sum as f64 / n as f64
            }
        };
        ServingReport {
            num_requests,
            num_batches: outcome.batches.len(),
            makespan_cycles: outcome.makespan_cycles(),
            p50_latency_cycles: percentile(&latencies, 50.0),
            p99_latency_cycles: percentile(&latencies, 99.0),
            mean_queueing_cycles: mean(&mut outcome.requests.iter().map(|r| r.queueing_cycles())),
            mean_service_cycles: mean(&mut outcome.requests.iter().map(|r| r.service_cycles())),
            measured_duty_cycle: outcome.measured_duty_cycle(),
            whole_chip_idle_fraction,
            designs,
            engine_counters: outcome.simulation.counters().clone(),
            cache_counters: outcome.cache,
            evaluation,
        }
    }

    /// Row of one design.
    ///
    /// # Panics
    ///
    /// Panics if the design was not evaluated (all designs always are).
    #[must_use]
    pub fn design(&self, design: Design) -> &DesignServingRow {
        self.designs.get(&design).expect("all designs are evaluated")
    }

    /// Latency percentiles converted to seconds on the evaluated chip.
    #[must_use]
    pub fn latency_seconds(&self) -> (f64, f64) {
        let spec = self.evaluation.simulation.chip().spec();
        (
            spec.cycles_to_seconds(self.p50_latency_cycles),
            spec.cycles_to_seconds(self.p99_latency_cycles),
        )
    }
}

/// Nearest-rank percentile of a sorted slice (0 for an empty slice).
fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.max(1) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::batch::BatchPolicy;
    use crate::simulator::ServingSimulator;
    use npu_arch::NpuGeneration;
    use npu_models::{DlrmSize, Workload};

    #[test]
    fn energy_per_request_is_none_when_no_requests_were_served() {
        let simulator = ServingSimulator::new(
            NpuGeneration::D,
            1,
            Workload::dlrm(DlrmSize::Small).with_batch(8),
        );
        let evaluator = Evaluator::new(NpuGeneration::D);
        let outcome = simulator.run(&[0, 1_000], &BatchPolicy::Static { batch: 2 });

        let report = ServingReport::evaluate(&outcome, &evaluator);
        for design in Design::ALL {
            let row = report.design(design);
            let per_request =
                row.energy_per_request_j.expect("a served trace has per-request energy");
            // Two requests, one chip: per-request energy is half the trace.
            assert!((per_request - row.total_j / 2.0).abs() < 1e-12);
        }
        // The whole-chip gateable share is a sub-fraction of the union
        // idleness the measured duty cycle already excludes.
        assert!((0.0..=1.0).contains(&report.whole_chip_idle_fraction));
        assert!(
            report.whole_chip_idle_fraction <= 1.0 - report.measured_duty_cycle + 1e-9,
            "gateable {} vs duty {}",
            report.whole_chip_idle_fraction,
            report.measured_duty_cycle
        );

        // Regression: with zero served requests the row used to report the
        // whole trace's energy as "per request". It now reports no value.
        let mut empty = outcome;
        empty.requests.clear();
        let report = ServingReport::evaluate(&empty, &evaluator);
        assert_eq!(report.num_requests, 0);
        for design in Design::ALL {
            assert_eq!(report.design(design).energy_per_request_j, None);
            assert!(report.design(design).total_j >= 0.0);
        }
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile(&v, 50.0), 50);
        assert_eq!(percentile(&v, 99.0), 100);
        assert_eq!(percentile(&v, 0.0), 10);
        assert_eq!(percentile(&v, 100.0), 100);
        assert_eq!(percentile(&[], 50.0), 0);
        assert_eq!(percentile(&[7], 99.0), 7);
    }
}
