//! Workspace verification tasks, runnable as `cargo run -p xtask -- <task>`.
//!
//! `check-json <file>...` verifies that hand-rendered JSON artifacts
//! (exported traces, power waveforms, `BENCH_*` envelopes) parse as
//! well-formed documents — the workspace vendors no JSON library, so the
//! exporters render by hand and this gate catches envelope bugs in CI.
//!
//! `lint` is a token-level source scan that denies
//! the constructs this workspace's determinism story cannot tolerate.
//! Every simulated number in the repo is pinned by bit-for-bit digest
//! tables, which only works if no code path's behaviour depends on hash
//! iteration order, wall-clock time, or ambient entropy:
//!
//! * `hash-iter` — `HashMap`/`HashSet` in the deterministic-order-critical
//!   crates (`npu-compiler`, `npu-sim`, `npu-serving`). Iteration order of
//!   std's hashers is randomized per process; one stray iteration turns a
//!   digest table into a coin flip. Use `BTreeMap`/`BTreeSet`, or carry a
//!   `// lint:allow(hash-iter)` with a justification for lookup-only maps.
//! * `wall-clock` — `Instant::now`/`SystemTime` anywhere outside the
//!   `bench` crate (and `benches/` harnesses). Simulated time comes from
//!   the event timeline; host time in a model is a reproducibility bug.
//! * `unseeded-rng` — `thread_rng`, `from_entropy`, `OsRng`, `getrandom`,
//!   `rand::random`. The only sanctioned randomness is the seeded
//!   `npu_sim::rng::SplitMix64`.
//! * `no-unwrap` — `.unwrap()`, and `.expect(` on a non-literal argument,
//!   in non-test library code. Library invariants must either hold a
//!   typed error or die with a message that states the invariant
//!   (`.expect("...")`); a bare unwrap reports `Option::unwrap` and a
//!   line number, which tells a user nothing.
//!
//! The scanner strips comments and string/char literals before matching
//! (string *contents* are blanked but the quotes survive, so
//! `.expect("msg")` is still recognizably literal), skips `#[cfg(test)]`
//! modules by brace tracking, and honours an inline escape hatch: a
//! `// lint:allow(<rule>)` comment on the offending line or the line
//! directly above suppresses that rule for that line. Output order is a
//! pure function of the tree (files sorted by path, rules in a fixed
//! order), so CI diffs are stable.

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// Crates whose output is pinned by bit-for-bit digests: hash-order
/// nondeterminism anywhere in them (tests included) is a denial.
const DETERMINISM_CRATES: &[&str] = &["npu-compiler", "npu-sim", "npu-serving"];

/// The one crate allowed to read the host clock (it measures the
/// simulator itself).
const WALL_CLOCK_EXEMPT_CRATES: &[&str] = &["bench"];

/// Crates whose `src/` is *library* code subject to `no-unwrap`
/// (everything but the binary/bench crate; `src/bin/`, `tests/`,
/// `benches/`, and `examples/` are excluded everywhere).
const UNWRAP_EXEMPT_CRATES: &[&str] = &["bench"];

/// Lint rule identifiers, in reporting order.
const RULE_HASH_ITER: &str = "hash-iter";
const RULE_WALL_CLOCK: &str = "wall-clock";
const RULE_UNSEEDED_RNG: &str = "unseeded-rng";
const RULE_NO_UNWRAP: &str = "no-unwrap";

/// One lint finding.
#[derive(Debug, PartialEq, Eq)]
struct Violation {
    /// Workspace-relative path.
    file: String,
    /// 1-based line number.
    line: usize,
    /// Rule identifier.
    rule: &'static str,
    /// The offending source line, trimmed.
    snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}: {}", self.file, self.line, self.rule, self.snippet)
    }
}

/// What kind of code a file holds, derived from its path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct FileContext<'a> {
    /// Name of the crate the file belongs to.
    crate_name: &'a str,
    /// `src/**` excluding `src/bin/**` — the code other crates link.
    is_library: bool,
    /// `tests/`, `benches/`, or `examples/` — harness code.
    is_harness: bool,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => run_lint(),
        Some("check-json") => run_check_json(&args[1..]),
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint | check-json <file>...>");
            eprintln!();
            eprintln!("tasks:");
            eprintln!("  lint        deny hash-iteration, wall-clock, unseeded RNG, and bare");
            eprintln!("              unwrap/expect in the workspace sources");
            eprintln!("  check-json  verify each file parses as a single well-formed JSON");
            eprintln!("              document (exported traces, BENCH_* envelopes)");
            ExitCode::from(2)
        }
    }
}

/// Verifies each listed file is one well-formed JSON document — the CI
/// gate over exported traces, power waveforms, and `BENCH_*` envelopes
/// (all hand-rendered, none produced by a JSON library).
fn run_check_json(files: &[String]) -> ExitCode {
    if files.is_empty() {
        eprintln!("check-json: no files given");
        return ExitCode::from(2);
    }
    let mut failed = false;
    for file in files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("check-json: {file}: {e}");
                failed = true;
                continue;
            }
        };
        match json::validate(&text) {
            Ok(()) => println!("check-json: {file}: ok ({} bytes)", text.len()),
            Err(e) => {
                eprintln!("check-json: {file}: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

/// A minimal recursive-descent JSON well-formedness checker (RFC 8259
/// grammar, no value materialization). Kept dependency-free on purpose:
/// the workspace vendors no JSON library, and the exporters it checks
/// render their documents by hand.
mod json {
    /// Validates that `text` is exactly one JSON value plus whitespace.
    pub fn validate(text: &str) -> Result<(), String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(at(bytes, pos, "trailing content after the document"));
        }
        Ok(())
    }

    /// Renders an error with its 1-based line and column.
    fn at(bytes: &[u8], pos: usize, what: &str) -> String {
        let mut line = 1usize;
        let mut column = 1usize;
        for &b in &bytes[..pos.min(bytes.len())] {
            if b == b'\n' {
                line += 1;
                column = 1;
            } else {
                column += 1;
            }
        }
        format!("line {line}, column {column}: {what}")
    }

    fn skip_ws(bytes: &[u8], pos: &mut usize) {
        while matches!(bytes.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            *pos += 1;
        }
    }

    fn value(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
        match bytes.get(*pos) {
            Some(b'{') => object(bytes, pos),
            Some(b'[') => array(bytes, pos),
            Some(b'"') => string(bytes, pos),
            Some(b'-' | b'0'..=b'9') => number(bytes, pos),
            Some(b't') => literal(bytes, pos, b"true"),
            Some(b'f') => literal(bytes, pos, b"false"),
            Some(b'n') => literal(bytes, pos, b"null"),
            Some(&b) => Err(at(bytes, *pos, &format!("unexpected byte {:?}", b as char))),
            None => Err(at(bytes, *pos, "unexpected end of input")),
        }
    }

    fn literal(bytes: &[u8], pos: &mut usize, expected: &[u8]) -> Result<(), String> {
        if bytes[*pos..].starts_with(expected) {
            *pos += expected.len();
            Ok(())
        } else {
            Err(at(bytes, *pos, &format!("expected `{}`", String::from_utf8_lossy(expected))))
        }
    }

    fn object(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // consume `{`
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b'}') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&b'"') {
                return Err(at(bytes, *pos, "expected a string object key"));
            }
            string(bytes, pos)?;
            skip_ws(bytes, pos);
            if bytes.get(*pos) != Some(&b':') {
                return Err(at(bytes, *pos, "expected `:` after object key"));
            }
            *pos += 1;
            skip_ws(bytes, pos);
            value(bytes, pos)?;
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b'}') => {
                    *pos += 1;
                    return Ok(());
                }
                _ => return Err(at(bytes, *pos, "expected `,` or `}` in object")),
            }
        }
    }

    fn array(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // consume `[`
        skip_ws(bytes, pos);
        if bytes.get(*pos) == Some(&b']') {
            *pos += 1;
            return Ok(());
        }
        loop {
            skip_ws(bytes, pos);
            value(bytes, pos)?;
            skip_ws(bytes, pos);
            match bytes.get(*pos) {
                Some(b',') => *pos += 1,
                Some(b']') => {
                    *pos += 1;
                    return Ok(());
                }
                _ => return Err(at(bytes, *pos, "expected `,` or `]` in array")),
            }
        }
    }

    fn string(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
        *pos += 1; // consume opening quote
        loop {
            match bytes.get(*pos) {
                Some(b'"') => {
                    *pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    *pos += 1;
                    match bytes.get(*pos) {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 1,
                        Some(b'u') => {
                            *pos += 1;
                            for _ in 0..4 {
                                if !matches!(
                                    bytes.get(*pos),
                                    Some(b'0'..=b'9' | b'a'..=b'f' | b'A'..=b'F')
                                ) {
                                    return Err(at(bytes, *pos, "bad \\u escape"));
                                }
                                *pos += 1;
                            }
                        }
                        _ => return Err(at(bytes, *pos, "bad escape in string")),
                    }
                }
                Some(&b) if b < 0x20 => {
                    return Err(at(bytes, *pos, "unescaped control character in string"));
                }
                Some(_) => *pos += 1,
                None => return Err(at(bytes, *pos, "unterminated string")),
            }
        }
    }

    fn number(bytes: &[u8], pos: &mut usize) -> Result<(), String> {
        if bytes.get(*pos) == Some(&b'-') {
            *pos += 1;
        }
        match bytes.get(*pos) {
            Some(b'0') => *pos += 1,
            Some(b'1'..=b'9') => digits(bytes, pos),
            _ => return Err(at(bytes, *pos, "expected a digit")),
        }
        if bytes.get(*pos) == Some(&b'.') {
            *pos += 1;
            if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                return Err(at(bytes, *pos, "expected a digit after `.`"));
            }
            digits(bytes, pos);
        }
        if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
            *pos += 1;
            if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
                *pos += 1;
            }
            if !matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
                return Err(at(bytes, *pos, "expected a digit in exponent"));
            }
            digits(bytes, pos);
        }
        Ok(())
    }

    fn digits(bytes: &[u8], pos: &mut usize) {
        while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }

    #[cfg(test)]
    mod tests {
        use super::validate;

        #[test]
        fn accepts_well_formed_documents() {
            for ok in [
                "{}",
                "[]",
                "null",
                "-12.5e-3",
                r#"{"a": [1, 2, {"b": "c\né"}], "d": true}"#,
                "{\n  \"schema_version\": 1,\n  \"rows\": [\n    { \"x\": 1.0e9 }\n  ]\n}\n",
            ] {
                assert!(validate(ok).is_ok(), "rejected valid JSON: {ok}");
            }
        }

        #[test]
        fn rejects_malformed_documents() {
            for bad in [
                "",
                "{",
                "[1,]",
                "{\"a\" 1}",
                "{'a': 1}",
                "01",
                "1.",
                "\"unterminated",
                "[1] trailing",
                "{\"a\": 1,}",
                "nul",
            ] {
                assert!(validate(bad).is_err(), "accepted malformed JSON: {bad}");
            }
        }
    }
}

fn run_lint() -> ExitCode {
    let root = workspace_root();
    let mut files = Vec::new();
    collect_rust_files(&root.join("crates"), &mut files);
    files.sort();

    let mut violations = Vec::new();
    for path in &files {
        let rel = path
            .strip_prefix(&root)
            .unwrap_or(path)
            .to_string_lossy()
            .replace(std::path::MAIN_SEPARATOR, "/");
        let Some(context) = classify(&rel) else { continue };
        let Ok(text) = std::fs::read_to_string(path) else {
            eprintln!("xtask lint: unreadable file {rel}");
            return ExitCode::from(2);
        };
        violations.extend(scan_source(context, &rel, &text));
    }

    if violations.is_empty() {
        println!("xtask lint: {} files clean", files.len());
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            println!("{v}");
        }
        println!("xtask lint: {} violations in {} files scanned", violations.len(), files.len());
        ExitCode::FAILURE
    }
}

/// The workspace root: two levels above this crate's manifest.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("tools/xtask sits two levels below the workspace root")
        .to_path_buf()
}

/// Recursively collects `.rs` files (skipping `target/`).
fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            collect_rust_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Derives the file's lint context from its workspace-relative path
/// (`crates/<name>/...`). Returns `None` for files outside `crates/`.
fn classify(rel: &str) -> Option<FileContext<'_>> {
    let rest = rel.strip_prefix("crates/")?;
    let (crate_name, inner) = rest.split_once('/')?;
    let is_library = inner.starts_with("src/") && !inner.starts_with("src/bin/");
    let is_harness = inner.starts_with("tests/")
        || inner.starts_with("benches/")
        || inner.starts_with("examples/");
    Some(FileContext { crate_name, is_library, is_harness })
}

/// Scans one file's source text and returns its violations.
fn scan_source(context: FileContext<'_>, rel: &str, text: &str) -> Vec<Violation> {
    let raw_lines: Vec<&str> = text.lines().collect();
    let stripped = strip_comments_and_strings(text);
    let stripped_lines: Vec<&str> = stripped.lines().collect();
    let in_test_mod = test_module_lines(&stripped_lines);

    let hash_iter_applies = DETERMINISM_CRATES.contains(&context.crate_name);
    let wall_clock_applies =
        !WALL_CLOCK_EXEMPT_CRATES.contains(&context.crate_name) && !context.is_harness;
    let unwrap_applies = context.is_library && !UNWRAP_EXEMPT_CRATES.contains(&context.crate_name);

    let allowed = |raw_lines: &[&str], index: usize, rule: &str| {
        let marker = format!("lint:allow({rule})");
        raw_lines[index].contains(&marker) || (index > 0 && raw_lines[index - 1].contains(&marker))
    };
    let mut out = Vec::new();
    let mut push = |index: usize, rule: &'static str| {
        if !allowed(&raw_lines, index, rule) {
            out.push(Violation {
                file: rel.to_string(),
                line: index + 1,
                rule,
                snippet: raw_lines[index].trim().chars().take(120).collect(),
            });
        }
    };

    for (index, line) in stripped_lines.iter().enumerate() {
        if hash_iter_applies && (contains_token(line, "HashMap") || contains_token(line, "HashSet"))
        {
            push(index, RULE_HASH_ITER);
        }
        if wall_clock_applies
            && (line.contains("Instant::now") || contains_token(line, "SystemTime"))
        {
            push(index, RULE_WALL_CLOCK);
        }
        if line.contains("thread_rng")
            || line.contains("from_entropy")
            || contains_token(line, "OsRng")
            || line.contains("getrandom")
            || line.contains("rand::random")
        {
            push(index, RULE_UNSEEDED_RNG);
        }
        if unwrap_applies && !in_test_mod[index] {
            if line.contains(".unwrap()") {
                push(index, RULE_NO_UNWRAP);
            }
            if let Some(pos) = line.find(".expect(") {
                let after = line[pos + ".expect(".len()..].trim_start();
                // String contents are blanked but the quotes survive, so a
                // literal message still starts with `"`. A line-ending
                // `(` means the argument is a wrapped expression — treat
                // it as non-literal unless the next line opens with `"`.
                let literal = after.starts_with('"')
                    || (after.is_empty()
                        && stripped_lines
                            .get(index + 1)
                            .is_some_and(|next| next.trim_start().starts_with('"')));
                if !literal {
                    push(index, RULE_NO_UNWRAP);
                }
            }
        }
    }
    out
}

/// Whether `token` occurs in `line` *as a whole word* (not as a substring
/// of a longer identifier).
fn contains_token(line: &str, token: &str) -> bool {
    let bytes = line.as_bytes();
    let mut start = 0;
    while let Some(found) = line[start..].find(token) {
        let begin = start + found;
        let end = begin + token.len();
        let boundary = |b: u8| !(b.is_ascii_alphanumeric() || b == b'_');
        let left_ok = begin == 0 || boundary(bytes[begin - 1]);
        let right_ok = end == bytes.len() || boundary(bytes[end]);
        if left_ok && right_ok {
            return true;
        }
        start = end;
    }
    false
}

/// Replaces comment bodies and string/char-literal *contents* with spaces
/// (string delimiters survive; newlines survive everywhere, so line
/// numbers are preserved).
fn strip_comments_and_strings(text: &str) -> String {
    #[derive(PartialEq)]
    enum State {
        Code,
        LineComment,
        BlockComment(usize),
        Str,
        RawStr(usize),
        Char,
    }
    let bytes = text.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut state = State::Code;
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        match state {
            State::Code => {
                if b == b'/' && bytes.get(i + 1) == Some(&b'/') {
                    state = State::LineComment;
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'"' {
                    state = State::Str;
                    out.push(b'"');
                    i += 1;
                } else if b == b'r' && matches!(bytes.get(i + 1), Some(&b'"') | Some(&b'#')) {
                    // Raw string: r"..." or r#"..."# (any hash depth).
                    let mut hashes = 0;
                    let mut j = i + 1;
                    while bytes.get(j) == Some(&b'#') {
                        hashes += 1;
                        j += 1;
                    }
                    if bytes.get(j) == Some(&b'"') {
                        state = State::RawStr(hashes);
                        out.resize(out.len() + (j - i), b' ');
                        out.push(b'"');
                        i = j + 1;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                } else if b == b'\'' {
                    // Char literal vs lifetime: a literal closes within a
                    // few bytes (`'x'`, `'\n'`, `'\u{..}'`); a lifetime
                    // never has a closing quote nearby.
                    let close =
                        bytes[i + 1..].iter().take(12).position(|&c| c == b'\'').map(|p| i + 1 + p);
                    let is_char = match close {
                        Some(c) if c == i + 1 => false, // `''` is not a char
                        Some(c) => bytes[i + 1] == b'\\' || c == i + 2,
                        None => false,
                    };
                    if is_char {
                        state = State::Char;
                        out.push(b'\'');
                        i += 1;
                    } else {
                        out.push(b);
                        i += 1;
                    }
                } else {
                    out.push(b);
                    i += 1;
                }
            }
            State::LineComment => {
                if b == b'\n' {
                    state = State::Code;
                    out.push(b'\n');
                } else {
                    out.push(b' ');
                }
                i += 1;
            }
            State::BlockComment(depth) => {
                if b == b'*' && bytes.get(i + 1) == Some(&b'/') {
                    state = if depth == 1 { State::Code } else { State::BlockComment(depth - 1) };
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else if b == b'/' && bytes.get(i + 1) == Some(&b'*') {
                    state = State::BlockComment(depth + 1);
                    out.extend_from_slice(b"  ");
                    i += 2;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::Str => {
                if b == b'\\' && i + 1 < bytes.len() {
                    // `\<newline>` is a line continuation: the newline must
                    // survive so line numbers stay aligned.
                    out.push(b' ');
                    out.push(if bytes[i + 1] == b'\n' { b'\n' } else { b' ' });
                    i += 2;
                } else if b == b'"' {
                    state = State::Code;
                    out.push(b'"');
                    i += 1;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if b == b'"' {
                    let closes = (1..=hashes).all(|k| bytes.get(i + k) == Some(&b'#'));
                    if closes {
                        state = State::Code;
                        out.push(b'"');
                        out.resize(out.len() + hashes, b' ');
                        i += 1 + hashes;
                        continue;
                    }
                }
                out.push(if b == b'\n' { b'\n' } else { b' ' });
                i += 1;
            }
            State::Char => {
                if b == b'\\' && i + 1 < bytes.len() {
                    out.push(b' ');
                    out.push(if bytes[i + 1] == b'\n' { b'\n' } else { b' ' });
                    i += 2;
                } else if b == b'\'' {
                    state = State::Code;
                    out.push(b'\'');
                    i += 1;
                } else {
                    out.push(if b == b'\n' { b'\n' } else { b' ' });
                    i += 1;
                }
            }
        }
    }
    String::from_utf8(out).expect("stripping replaces bytes with ASCII only")
}

/// Marks the lines that sit inside a `#[cfg(test)]`-gated item (module or
/// function) by tracking brace depth from the attribute's item.
fn test_module_lines(stripped_lines: &[&str]) -> Vec<bool> {
    let mut in_test = vec![false; stripped_lines.len()];
    let mut i = 0;
    while i < stripped_lines.len() {
        if stripped_lines[i].contains("#[cfg(test)]") {
            // Find the opening brace of the gated item, then consume until
            // its matching close. Everything in between is test code.
            let mut depth = 0usize;
            let mut opened = false;
            let mut j = i;
            while j < stripped_lines.len() {
                for c in stripped_lines[j].chars() {
                    match c {
                        '{' => {
                            depth += 1;
                            opened = true;
                        }
                        '}' => depth = depth.saturating_sub(1),
                        _ => {}
                    }
                }
                in_test[j] = true;
                if opened && depth == 0 {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    in_test
}

#[cfg(test)]
mod tests {
    use super::*;

    const LIB: FileContext<'_> =
        FileContext { crate_name: "npu-sim", is_library: true, is_harness: false };

    fn rules_of(violations: &[Violation]) -> Vec<&'static str> {
        violations.iter().map(|v| v.rule).collect()
    }

    #[test]
    fn every_rule_fires_on_a_minimal_repro() {
        let src = "use std::collections::HashMap;\n\
                   let t = std::time::Instant::now();\n\
                   let r = rand::thread_rng();\n\
                   let v = x.unwrap();\n\
                   let w = y.expect(msg);\n";
        let rules = rules_of(&scan_source(LIB, "crates/npu-sim/src/x.rs", src));
        assert_eq!(
            rules,
            [RULE_HASH_ITER, RULE_WALL_CLOCK, RULE_UNSEEDED_RNG, RULE_NO_UNWRAP, RULE_NO_UNWRAP]
        );
    }

    #[test]
    fn expect_with_a_literal_message_is_allowed() {
        let src = "let a = x.expect(\"the invariant\");\n\
                   let b = y.expect(\n    \"wrapped literal\",\n);\n\
                   let c = z.expect(message());\n";
        let violations = scan_source(LIB, "crates/npu-sim/src/x.rs", src);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].line, 5);
    }

    #[test]
    fn lint_allow_suppresses_on_same_and_preceding_line() {
        let src = "use std::collections::HashMap; // lint:allow(hash-iter) lookup-only\n\
                   // lint:allow(no-unwrap) justified\n\
                   let v = x.unwrap();\n\
                   let w = y.unwrap();\n";
        let violations = scan_source(LIB, "crates/npu-sim/src/x.rs", src);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].line, 4);
        assert_eq!(violations[0].rule, RULE_NO_UNWRAP);
    }

    #[test]
    fn comments_strings_and_test_modules_do_not_fire() {
        let src = "// a HashMap in a comment\n\
                   /* Instant::now() in a block\n   spanning lines */\n\
                   let s = \".unwrap() thread_rng HashMap\";\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn f() { x.unwrap(); }\n\
                   }\n";
        assert_eq!(scan_source(LIB, "crates/npu-sim/src/x.rs", src), Vec::new());
    }

    #[test]
    fn rules_scope_by_crate_and_file_kind() {
        let src = "use std::collections::HashMap;\nlet v = x.unwrap();\n";
        // npu-arch: not a determinism crate, but still a library → only
        // the unwrap fires.
        let arch = FileContext { crate_name: "npu-arch", is_library: true, is_harness: false };
        assert_eq!(rules_of(&scan_source(arch, "f.rs", src)), [RULE_NO_UNWRAP]);
        // bench: exempt from unwrap and wall-clock, but not from RNG.
        let bench = FileContext { crate_name: "bench", is_library: true, is_harness: false };
        assert_eq!(
            scan_source(bench, "f.rs", "let t = Instant::now();\nx.unwrap();\n"),
            Vec::new()
        );
        assert_eq!(rules_of(&scan_source(bench, "f.rs", "thread_rng()\n")), [RULE_UNSEEDED_RNG]);
        // A test harness file of a determinism crate: hash-iter still
        // applies (digest tables run there), unwrap does not.
        let harness = FileContext { crate_name: "npu-sim", is_library: false, is_harness: true };
        assert_eq!(rules_of(&scan_source(harness, "f.rs", src)), [RULE_HASH_ITER]);
    }

    #[test]
    fn token_matching_requires_word_boundaries() {
        assert!(contains_token("use std::collections::HashMap;", "HashMap"));
        assert!(!contains_token("struct MyHashMapLike;", "HashMap"));
        assert!(!contains_token("let hashmap = 1;", "HashMap"));
    }

    #[test]
    fn classify_maps_paths_to_contexts() {
        assert_eq!(
            classify("crates/npu-sim/src/engine.rs"),
            Some(FileContext { crate_name: "npu-sim", is_library: true, is_harness: false })
        );
        assert_eq!(
            classify("crates/bench/src/bin/evaluation.rs"),
            Some(FileContext { crate_name: "bench", is_library: false, is_harness: false })
        );
        assert_eq!(
            classify("crates/bench/benches/engine_hot_loop.rs"),
            Some(FileContext { crate_name: "bench", is_library: false, is_harness: true })
        );
        assert_eq!(classify("tools/xtask/src/main.rs"), None);
    }

    #[test]
    fn stripping_preserves_line_numbers_through_string_continuations() {
        // A `\`-newline continuation inside a string literal spans lines;
        // losing that newline would shift every report below it.
        let src =
            "let m = format!(\n    \"first half \\\n     second half\",\n);\nlet v = x.unwrap();\n";
        assert_eq!(strip_comments_and_strings(src).lines().count(), src.lines().count());
        let violations = scan_source(LIB, "f.rs", src);
        assert_eq!(rules_of(&violations), [RULE_NO_UNWRAP]);
        assert_eq!(violations[0].line, 5);
    }

    #[test]
    fn raw_strings_and_char_literals_survive_stripping() {
        let src = "let a = r#\"HashMap inside raw\"#;\nlet b = '\\n';\nlet c: &'static str = \"x\";\nlet d = x.unwrap();\n";
        let violations = scan_source(LIB, "f.rs", src);
        assert_eq!(rules_of(&violations), [RULE_NO_UNWRAP]);
        assert_eq!(violations[0].line, 4);
    }
}
