//! DLRM inference power-gating study: the workload with the largest ReGate
//! benefit (the systolic arrays are idle and most of the SRAM is unused).
//!
//! Run with `cargo run --release -p regate-bench --example dlrm_power_gating`.

use npu_arch::{ComponentKind, NpuGeneration};
use npu_models::{DlrmSize, Workload};
use regate::{Design, Evaluator};

fn main() {
    let evaluator = Evaluator::new(NpuGeneration::D);
    println!(
        "{:<8} {:>8} {:>10} {:>10} {:>10} {:>10} {:>12} {:>12}",
        "model", "chips", "SA util", "ICI util", "SRAM p99", "Base", "ReGate-Full", "Ideal"
    );
    for size in DlrmSize::ALL {
        let workload = Workload::dlrm(size).with_batch(4096);
        let eval = evaluator.evaluate(&workload, 8);
        let activity = eval.simulation.activity();
        println!(
            "{:<8} {:>8} {:>9.1}% {:>9.1}% {:>7.1}MiB {:>9.1}% {:>11.1}% {:>11.1}%",
            size.label(),
            eval.num_chips,
            activity.temporal_utilization(ComponentKind::Sa) * 100.0,
            activity.temporal_utilization(ComponentKind::Ici) * 100.0,
            eval.simulation.sram_demand_percentile_mib(99.0),
            eval.energy_savings(Design::ReGateBase) * 100.0,
            eval.energy_savings(Design::ReGateFull) * 100.0,
            eval.energy_savings(Design::Ideal) * 100.0,
        );
    }
    println!();
    let eval = evaluator.evaluate(&Workload::dlrm(DlrmSize::Large).with_batch(4096), 8);
    println!("DLRM-L per-request energy:");
    for design in Design::ALL {
        println!(
            "  {:<12} {:>10.4} J/request (avg {:>5.1} W, peak {:>5.1} W)",
            design.label(),
            eval.energy_per_work(design),
            eval.average_power_w(design),
            eval.peak_power_w(design),
        );
    }
}
