//! LLM inference energy study: compares prefill and decode across NPU
//! generations and shows where ReGate's savings come from per component.
//!
//! Run with `cargo run --release -p regate-bench --example llm_inference_energy`.

use npu_arch::NpuGeneration;
use npu_models::{LlamaModel, LlmPhase, Workload};
use regate::{Design, Evaluator};

fn main() {
    let model = LlamaModel::Llama3_70B;
    for phase in [LlmPhase::Prefill, LlmPhase::Decode] {
        let workload = Workload::llm(model, phase);
        println!("=== {} {} ===", model.name(), phase);
        println!(
            "{:<8} {:>6} {:>14} {:>10} {:>10} {:>10} {:>10}",
            "NPU", "chips", "J/token", "SA util", "HBM util", "Full save", "Ideal save"
        );
        for generation in NpuGeneration::DEPLOYED {
            let chips = 8;
            let evaluator = Evaluator::new(generation);
            let eval = evaluator.evaluate(&workload, chips);
            let activity = eval.simulation.activity();
            println!(
                "{:<8} {:>6} {:>14.4} {:>9.1}% {:>9.1}% {:>9.1}% {:>9.1}%",
                generation.to_string(),
                chips,
                eval.energy_per_work(Design::NoPg),
                activity.temporal_utilization(npu_arch::ComponentKind::Sa) * 100.0,
                activity.temporal_utilization(npu_arch::ComponentKind::Hbm) * 100.0,
                eval.energy_savings(Design::ReGateFull) * 100.0,
                eval.energy_savings(Design::Ideal) * 100.0,
            );
        }
        // Per-component saving breakdown on NPU-D.
        let eval = Evaluator::new(NpuGeneration::D).evaluate(&workload, 8);
        println!("ReGate-Full savings breakdown on NPU-D:");
        for (component, saving) in eval.savings_breakdown(Design::ReGateFull) {
            if saving.abs() > 1e-4 {
                println!("  {:<6} {:>6.2}% of total energy", component.label(), saving * 100.0);
            }
        }
        println!();
    }
}
