//! Quickstart: evaluate ReGate on one workload and print the headline
//! numbers (energy savings, power, performance overhead).
//!
//! Run with `cargo run --release -p regate-bench --example quickstart`.

use npu_arch::NpuGeneration;
use npu_models::{LlamaModel, LlmPhase, Workload};
use regate::{Design, Evaluator};

fn main() {
    let workload = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
    let evaluator = Evaluator::new(NpuGeneration::D);
    let eval = evaluator.evaluate(&workload, 1);

    println!(
        "workload: {} on {} x{} ({})",
        workload, eval.generation, eval.num_chips, eval.parallelism
    );
    println!("execution time: {:.3} ms", eval.design(Design::NoPg).energy.busy_seconds * 1e3);
    println!();
    println!(
        "{:<12} {:>14} {:>12} {:>12} {:>12}",
        "design", "energy (J)", "savings", "avg power", "overhead"
    );
    for design in Design::ALL {
        println!(
            "{:<12} {:>14.3} {:>11.1}% {:>10.1} W {:>11.2}%",
            design.label(),
            eval.design(design).energy.total_j(),
            eval.energy_savings(design) * 100.0,
            eval.average_power_w(design),
            eval.performance_overhead(design) * 100.0,
        );
    }
    println!();
    println!(
        "energy per token (NoPG → ReGate-Full): {:.4} J → {:.4} J",
        eval.energy_per_work(Design::NoPg),
        eval.energy_per_work(Design::ReGateFull)
    );
    println!(
        "operational carbon reduction (ReGate-Full): {:.1}%",
        eval.operational_carbon_reduction(Design::ReGateFull) * 100.0
    );
}
