//! Carbon-efficiency study (paper §6.6): operational carbon reduction and
//! the optimal device lifespan with and without ReGate.
//!
//! Run with `cargo run --release -p regate-bench --example carbon_lifespan`.

use npu_arch::NpuGeneration;
use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};
use regate::experiments::lifespan_sweep;
use regate::{Design, Evaluator};

fn main() {
    let workloads = [
        Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
        Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill),
        Workload::dlrm(DlrmSize::Large),
    ];
    println!("{:<28} {:>16} {:>22}", "workload", "carbon reduction", "optimal lifespan (yrs)");
    for workload in workloads {
        let chips = 8;
        let eval = Evaluator::new(NpuGeneration::D).evaluate(&workload, chips);
        let sweep = lifespan_sweep(&workload, NpuGeneration::D, chips);
        println!(
            "{:<28} {:>15.1}% {:>10} → {:<10}",
            workload.label(),
            eval.operational_carbon_reduction(Design::ReGateFull) * 100.0,
            sweep.nopg_optimal_years,
            sweep.regate_optimal_years,
        );
        println!("  carbon per 1M work units vs lifespan (NoPG / ReGate-Full):");
        for (a, b) in sweep.nopg.iter().zip(sweep.regate.iter()) {
            // Per-unit carbon is ~1e-8 kg; scale to grams per million work
            // units so the sweep's shape is visible at fixed precision.
            let scale = 1e6 * 1e3;
            println!(
                "    {:>2} yr: {:>10.3} / {:>10.3} gCO2e",
                a.lifespan_years,
                a.carbon_kg_per_work * scale,
                b.carbon_kg_per_work * scale,
            );
        }
    }
}
