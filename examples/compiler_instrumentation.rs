//! Compiler instrumentation walkthrough (paper §4.3, Figures 14, 15, 20):
//! expands a compiled operator into a VLIW schedule, runs the idleness
//! analysis, inserts `setpm` instructions under the BET policy, and prints
//! the instrumented disassembly.
//!
//! Run with `cargo run --release -p regate-bench --example compiler_instrumentation`.

use npu_arch::{NpuGeneration, NpuSpec, ParallelismConfig};
use npu_compiler::instrument::{instrument_vu, SetPmPolicy};
use npu_compiler::vliw::{expand_operator, ExpansionLimits};
use npu_compiler::{Compiler, IdlenessReport};
use npu_isa::bundle::Slot;
use npu_models::{LlamaModel, LlmPhase, Workload};
use npu_power::GatingParams;

fn main() {
    let spec = NpuSpec::generation(NpuGeneration::D);
    let workload = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill);
    let graph = workload.build_graph(&ParallelismConfig::single());
    let compiled = Compiler::new(spec.clone()).compile(&graph);

    // Pick an SA anchor with fused vector post-processing (the Figure 15 shape).
    let anchor = compiled
        .anchors()
        .find(|op| op.fused_vu_elements > 0 && op.unit == npu_models::ExecutionUnit::Sa)
        .expect("prefill has fused matmul operators");
    println!("operator: {} (fused VU elements: {})", anchor.op.name, anchor.fused_vu_elements);

    let (program, tiles) = expand_operator(anchor, &spec, ExpansionLimits { max_tiles: 4 });
    println!(
        "expanded {} tiles into {} bundles ({} cycles)\n",
        tiles,
        program.len(),
        program.issue_cycles()
    );

    let report = IdlenessReport::analyze(&program);
    println!("VU0 utilization: {:.1}%", report.utilization(Slot::Vu(0)) * 100.0);
    for interval in report.intervals(Slot::Vu(0)).iter().take(5) {
        println!(
            "  idle [{}, {}) = {} cycles{}",
            interval.start_cycle,
            interval.end_cycle,
            interval.len(),
            if interval.unbounded { " (unbounded: DMA inside)" } else { "" }
        );
    }

    let params = GatingParams::default();
    let policy = SetPmPolicy::new(params.vu_bet, params.vu_delay);
    let result = instrument_vu(&program, policy);
    println!(
        "\ninserted {} setpm instructions ({:.2} per 1000 cycles), gated {} cycles",
        result.setpm_inserted,
        result.setpm_per_kilocycle(),
        result.gated_cycles
    );
    println!("\ninstrumented program (first 24 bundles):");
    for line in result.program.disassemble().lines().take(24) {
        println!("  {line}");
    }
}
