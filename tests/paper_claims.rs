//! Reproduction of the paper's headline claims (abstract and §6), checked
//! as ranges rather than exact values since the substrate is an analytical
//! simulator rather than the authors' calibrated one:
//!
//! * 30%–72% of busy energy is static (§3);
//! * ReGate-Full saves roughly 8.5%–32.8% of energy, ~15.5% on average;
//! * performance overhead of ReGate-Full is below 0.5%;
//! * DLRM benefits the most, compute-bound LLM prefill the least;
//! * operational carbon reduction is far larger than the energy savings.

use npu_arch::NpuGeneration;
use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};
use regate::{Design, Evaluator};

/// The evaluation set used by the claim tests: a light-weight version of
/// Table 4 (small chip counts so the tests stay fast).
fn claim_workloads() -> Vec<(Workload, usize)> {
    vec![
        (Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Training), 4),
        (Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Training), 4),
        (Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill), 1),
        (Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill), 1),
        (Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1),
        (Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Decode), 8),
        (Workload::dlrm(DlrmSize::Small), 8),
        (Workload::dlrm(DlrmSize::Large), 8),
    ]
}

#[test]
fn static_power_share_is_30_to_72_percent_when_busy() {
    let evaluator = Evaluator::new(NpuGeneration::D);
    for (workload, chips) in claim_workloads() {
        let eval = evaluator.evaluate(&workload, chips);
        let fraction = eval.design(Design::NoPg).energy.static_fraction();
        // DLRM is dominated by latency-bound all-to-all exchanges that burn
        // almost no dynamic energy, so its static share lands above the
        // paper's densest workloads; everything else must sit in the band.
        let upper = if matches!(workload, Workload::Dlrm(_)) { 0.95 } else { 0.80 };
        assert!(
            (0.25..=upper).contains(&fraction),
            "{workload}: static fraction {fraction} outside the paper's 30%-72% band"
        );
    }
}

#[test]
fn regate_full_saves_8_to_35_percent_with_a_15_percent_mean() {
    let evaluator = Evaluator::new(NpuGeneration::D);
    let mut savings = Vec::new();
    for (workload, chips) in claim_workloads() {
        let eval = evaluator.evaluate(&workload, chips);
        let s = eval.energy_savings(Design::ReGateFull);
        assert!(
            (0.04..=0.45).contains(&s),
            "{workload}: ReGate-Full savings {s} outside the expected band"
        );
        savings.push(s);
    }
    let mean = savings.iter().sum::<f64>() / savings.len() as f64;
    assert!((0.08..=0.30).contains(&mean), "mean savings {mean} should be in the ~15% ballpark");
}

#[test]
fn regate_full_overhead_is_below_half_percent() {
    let evaluator = Evaluator::new(NpuGeneration::D);
    for (workload, chips) in claim_workloads() {
        let eval = evaluator.evaluate(&workload, chips);
        let overhead = eval.performance_overhead(Design::ReGateFull);
        assert!(overhead < 0.005, "{workload}: ReGate-Full overhead {overhead} above 0.5%");
        assert!(
            eval.performance_overhead(Design::ReGateBase) < 0.05,
            "{workload}: ReGate-Base overhead above 5%"
        );
    }
}

#[test]
fn dlrm_sa_idleness_exceeds_vu_and_dma_idleness() {
    // §3 / Figure 4: DLRM-class workloads leave the systolic arrays almost
    // completely idle (~0% SA temporal utilization) while the DMA engine
    // streams embedding gathers and the VU pools embeddings and computes
    // the pairwise feature interaction. On the DAG timeline — per-table
    // gathers overlapped with the MLPs and the all-to-all — the SA idle
    // fraction must exceed both the VU and the DMA idle fractions for
    // every DLRM size at the Table-4 serving batch.
    use npu_arch::ComponentKind;
    let evaluator = Evaluator::new(NpuGeneration::D);
    for size in DlrmSize::ALL {
        let eval = evaluator.evaluate(&Workload::dlrm(size).with_batch(4096), 8);
        let activity = eval.simulation.activity();
        let idle = |kind| 1.0 - activity.temporal_utilization(kind);
        let sa = idle(ComponentKind::Sa);
        let vu = idle(ComponentKind::Vu);
        let dma = idle(ComponentKind::Dma);
        assert!(sa > vu, "{size}: SA idle fraction {sa:.4} should exceed VU idle fraction {vu:.4}");
        assert!(
            sa > dma,
            "{size}: SA idle fraction {sa:.4} should exceed DMA idle fraction {dma:.4}"
        );
        assert!(sa > 0.9, "{size}: DLRM should leave the SA >90% idle, got {sa:.4}");
    }
}

#[test]
fn dlrm_saves_most_and_prefill_saves_least() {
    let evaluator = Evaluator::new(NpuGeneration::D);
    let dlrm = evaluator.evaluate(&Workload::dlrm(DlrmSize::Medium), 8);
    let prefill = evaluator.evaluate(&Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill), 1);
    let decode = evaluator.evaluate(&Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Decode), 1);
    let s_dlrm = dlrm.energy_savings(Design::ReGateFull);
    let s_prefill = prefill.energy_savings(Design::ReGateFull);
    let s_decode = decode.energy_savings(Design::ReGateFull);
    assert!(s_dlrm > s_decode, "DLRM {s_dlrm} should beat decode {s_decode}");
    assert!(s_decode > s_prefill, "decode {s_decode} should beat prefill {s_prefill}");
}

#[test]
fn full_is_within_a_few_percent_of_ideal() {
    // The paper reports ReGate-Full within 0.40% of Ideal; our analytical
    // substrate keeps it within a few percent of total energy.
    let evaluator = Evaluator::new(NpuGeneration::D);
    for (workload, chips) in claim_workloads() {
        let eval = evaluator.evaluate(&workload, chips);
        let gap = eval.energy_savings(Design::Ideal) - eval.energy_savings(Design::ReGateFull);
        assert!(gap >= -1e-9);
        assert!(gap < 0.08, "{workload}: Full trails Ideal by {gap}");
    }
}

#[test]
fn software_gating_beats_hardware_only_for_vus_and_sram() {
    let evaluator = Evaluator::new(NpuGeneration::D);
    let eval = evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill), 1);
    let hw = eval.savings_breakdown(Design::ReGateHw);
    let full = eval.savings_breakdown(Design::ReGateFull);
    let vu_gain = full[&npu_arch::ComponentKind::Vu] - hw[&npu_arch::ComponentKind::Vu];
    let sram_gain = full[&npu_arch::ComponentKind::Sram] - hw[&npu_arch::ComponentKind::Sram];
    assert!(vu_gain > 0.0, "software VU gating adds savings");
    assert!(sram_gain > 0.0, "software SRAM-off gating adds savings");
}

#[test]
fn full_sram_savings_exceed_base_sram_savings_on_decode() {
    // §4.3 / per-segment SRAM gating: decode-phase LLM serving leaves
    // almost the whole scratchpad dead (the working set is a few MiB of
    // the 128 MiB). ReGate-Base and ReGate-HW can only put dead segments
    // into the data-retaining sleep mode (25% residual leakage, hardware
    // idle detection); ReGate-Full knows the segment lifetimes statically
    // and powers dead segments off via `setpm` (0.2% residual), so its
    // SRAM savings must be strictly — and materially — larger.
    use npu_arch::ComponentKind;
    let evaluator = Evaluator::new(NpuGeneration::D);
    for (model, chips) in [(LlamaModel::Llama3_8B, 1), (LlamaModel::Llama3_70B, 8)] {
        let eval = evaluator.evaluate(&Workload::llm(model, LlmPhase::Decode), chips);
        let base = eval.savings_breakdown(Design::ReGateBase)[&ComponentKind::Sram];
        let hw = eval.savings_breakdown(Design::ReGateHw)[&ComponentKind::Sram];
        let full = eval.savings_breakdown(Design::ReGateFull)[&ComponentKind::Sram];
        assert!(
            full > base,
            "{model} decode: Full SRAM savings {full:.4} must exceed Base's {base:.4}"
        );
        // Base and HW share the drowsy retention mode; their SRAM rows
        // differ only through the designs' different wake-up stall time,
        // which is charged to every component at full static power.
        assert!(
            (base - hw).abs() < 1e-3,
            "{model} decode: Base ({base:.4}) and HW ({hw:.4}) both use drowsy retention"
        );
        assert!(
            full - base > 0.005,
            "{model} decode: off-vs-drowsy gap {:.4} should be material (dead segments \
             dominate)",
            full - base
        );
    }
}

#[test]
fn operational_carbon_reduction_is_31_to_63_percent() {
    let evaluator = Evaluator::new(NpuGeneration::D);
    let mut reductions = Vec::new();
    for (workload, chips) in claim_workloads() {
        let eval = evaluator.evaluate(&workload, chips);
        let r = eval.operational_carbon_reduction(Design::ReGateFull);
        assert!(r > eval.energy_savings(Design::ReGateFull), "{workload}");
        reductions.push(r);
    }
    let mean = reductions.iter().sum::<f64>() / reductions.len() as f64;
    assert!((0.20..=0.70).contains(&mean), "mean carbon reduction {mean}");
}

#[test]
fn low_load_serving_savings_exceed_busy_trace_savings_and_converge_with_load() {
    // ReGate's §3 duty-cycle argument, made executable: production NPUs
    // idle *between* inferences, so a gating design must save more energy
    // on a realistic low-load arrival trace (long inter-request gaps it
    // can gate) than on the busy trace alone — and the advantage must
    // shrink as offered load rises, converging to the busy-trace figure at
    // saturation (where the serving schedule *is* the cycle-0 batch run,
    // bit for bit).
    use npu_serving::{ArrivalProcess, BatchPolicy, ServingReport, ServingSimulator};

    let evaluator = Evaluator::new(NpuGeneration::D);
    let server =
        ServingSimulator::new(NpuGeneration::D, 1, Workload::dlrm(DlrmSize::Small).with_batch(32));
    let policy = BatchPolicy::Static { batch: 2 };
    let savings_at = |interval_cycles: u64| -> f64 {
        let arrivals = ArrivalProcess::FixedRate { interval_cycles }.arrivals(8);
        let outcome = server.run(&arrivals, &policy);
        ServingReport::evaluate(&outcome, &evaluator).design(Design::ReGateFull).savings
    };

    // Saturation = the busy trace (every request ready at cycle 0).
    let busy_trace = savings_at(0);
    let high_load = savings_at(100_000);
    let low_load = savings_at(2_000_000);
    assert!(
        low_load > busy_trace,
        "low-load savings ({low_load:.4}) must strictly exceed the busy-trace savings \
         ({busy_trace:.4}): the inter-request gaps are gateable energy"
    );
    assert!(
        low_load > high_load && high_load > busy_trace,
        "the gap must shrink monotonically as load rises: low {low_load:.4}, high \
         {high_load:.4}, busy {busy_trace:.4}"
    );
    // The advantage is material at low load, not a rounding artifact.
    assert!(
        low_load - busy_trace > 0.10,
        "gating 7 multi-million-cycle gaps should add double-digit savings, got \
         {:.4}",
        low_load - busy_trace
    );
}

#[test]
fn tile_grain_regating_cuts_regate_base_wakeup_overhead_on_bursty_decode() {
    // Figure 19's overhead source, made executable: ReGate-Base pays the
    // full SA power-on delay every time a gated array wakes, so a bursty
    // decode trace — many short bursts separated by long gateable gaps —
    // accumulates visible wake-up stalls. Re-gating at tile grain *inside*
    // the bursts wakes only the next tile's worth of PEs ahead of the
    // wavefront, shrinking the exposed stall without giving up the gated
    // intervals.
    use npu_serving::{ArrivalProcess, BatchPolicy, ServingSimulator};
    use regate::PolicyKind;

    let evaluator = Evaluator::new(NpuGeneration::D);
    let server = ServingSimulator::new(
        NpuGeneration::D,
        1,
        Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode).with_batch(2),
    );
    let arrivals = ArrivalProcess::BurstyOnOff {
        burst_len: 4,
        intra_burst_cycles: 5_000,
        off_cycles: 2_000_000,
    }
    .arrivals(16);
    let outcome = server.run(&arrivals, &BatchPolicy::Static { batch: 4 });

    let kinds = [PolicyKind::Preset(Design::ReGateBase), PolicyKind::TileGrainBase];
    let set = evaluator.evaluate_policies(
        1,
        &outcome.compiled,
        &outcome.simulation,
        1.0, // the trace holds its own idleness
        &kinds,
    );
    let base = set.row(PolicyKind::Preset(Design::ReGateBase));
    let tile = set.row(PolicyKind::TileGrainBase);

    assert!(
        base.performance_overhead > 0.0,
        "ReGate-Base must show wake-up overhead on a bursty decode trace, got \
         {:.6}",
        base.performance_overhead
    );
    assert!(
        tile.performance_overhead < base.performance_overhead,
        "tile-grain re-gating must reduce ReGate-Base's wake-up overhead: tile \
         {:.6} vs base {:.6}",
        tile.performance_overhead,
        base.performance_overhead
    );
    // The overhead cut is not bought with the gated energy: tile-grain
    // savings stay within a small delta of Base's on the same timeline.
    assert!(
        (tile.savings - base.savings).abs() < 0.02,
        "tile-grain savings {:.4} should stay close to Base's {:.4}",
        tile.savings,
        base.savings
    );
}

#[test]
fn whole_chip_gating_beats_per_component_gating_on_pipeline_bubbles() {
    // §7's whole-chip discussion, made executable on the pod timeline:
    // pipeline-parallel serving leaves off-critical chips in chip-wide
    // bubbles where per-component gating has already emptied the SA, VU,
    // and memory interfaces but the uncore keeps leaking. Chip-level
    // gating of the union-idle intervals must therefore (a) strictly beat
    // per-component gating even with balanced stages (fill/drain bubbles
    // alone exceed the chip-level break-even time), and (b) gain *more*
    // as stage imbalance widens the bubbles.
    use npu_arch::{LinkGraph, NpuSpec, PodTopology, TorusKind};
    use npu_power::GatingParams;
    use npu_sim::pod::pipeline_trace;
    use regate::pod_static_gating;

    let report = |stage_cycles: &[u64]| {
        let graph = LinkGraph::torus(&PodTopology::for_chips(TorusKind::Torus2D, 4));
        let schedule = pipeline_trace(&graph, stage_cycles, 8).engine().run();
        pod_static_gating(
            &schedule,
            &GatingParams::default(),
            &NpuSpec::generation(NpuGeneration::D),
        )
    };

    let balanced = report(&[20_000; 4]);
    assert!(balanced.per_component_savings() > 0.0);
    assert!(
        balanced.whole_chip_gain() > 0.0,
        "whole-chip gating must add savings on top of per-component gating, got gain {}",
        balanced.whole_chip_gain()
    );

    let imbalanced = report(&[20_000, 80_000, 20_000, 20_000]);
    assert!(
        imbalanced.whole_chip_gain() > balanced.whole_chip_gain(),
        "stage imbalance must widen the whole-chip advantage: imbalanced {} vs balanced {}",
        imbalanced.whole_chip_gain(),
        balanced.whole_chip_gain()
    );
}
