//! Multi-chip (pod) invariants over the dynamic-resource-set engine.
//!
//! Three layers: (1) per-hop ring collectives on an uncongested fabric
//! must reproduce the compiler's analytic model exactly (the analytic
//! single-phase cost was the oracle the per-hop lowering replaced);
//! (2) collectives contending for the same ring must serialize on the
//! shared link resources; (3) a seeded random pod corpus must satisfy the
//! structural invariants no particular trace exercises: per-link tracks
//! stay sorted and disjoint (no double-booking), the lowering agrees with
//! the fabric under the `topo.*` analyzer pass, repeated runs are
//! bit-identical, and the measured makespan lands inside the static
//! window.

use npu_arch::{LinkGraph, PodTopology, TorusKind};
use npu_compiler::CollectivePlan;
use npu_models::CollectiveKind;
use npu_sim::analysis;
use npu_sim::engine::DISPATCH_OVERHEAD_CYCLES;
use npu_sim::pod::PodBuilder;
use npu_sim::timeline::TimelineEngine;
use npu_sim::{Resource, ResourceId, Schedule};

fn torus(kind: TorusKind, chips: usize) -> LinkGraph {
    LinkGraph::torus(&PodTopology::for_chips(kind, chips))
}

// ---------------------------------------------------------------------
// Per-hop lowering vs the analytic uncongested-ring oracle
// ---------------------------------------------------------------------

#[test]
fn ring_collectives_match_the_analytic_model_per_hop() {
    for torus_kind in [TorusKind::Torus2D, TorusKind::Torus3D] {
        for chips in [2usize, 4, 8, 16] {
            let graph = torus(torus_kind, chips);
            for (kind, total) in
                [(CollectiveKind::AllReduce, 100_000u64), (CollectiveKind::AllGather, 60_000)]
            {
                let plan = CollectivePlan::lower(kind, total, &graph);
                // The lowering conserves the analytic total exactly and
                // splits it evenly: every hop within 1 cycle of the mean.
                assert_eq!(plan.total_cycles(), total, "{torus_kind:?}/{chips}/{kind:?}");
                let steps = plan.step_cycles.len() as u64;
                for &step in &plan.step_cycles {
                    assert!(
                        step.abs_diff(total / steps) <= 1,
                        "{torus_kind:?}/{chips}/{kind:?}: hop {step} vs even {}",
                        total / steps
                    );
                }
                // On an uncongested ring the engine's per-hop occupancy
                // reproduces the analytic single-phase cost exactly.
                let mut builder = PodBuilder::new(&graph);
                builder.push_collective(&plan, vec![]);
                let schedule = builder.engine().run();
                assert_eq!(
                    schedule.makespan,
                    DISPATCH_OVERHEAD_CYCLES + total,
                    "{torus_kind:?}/{chips}/{kind:?}"
                );
            }
        }
    }
}

#[test]
fn contending_collectives_serialize_on_the_shared_ring() {
    let graph = torus(TorusKind::Torus2D, 4);
    let plan = CollectivePlan::lower(CollectiveKind::AllReduce, 10_000, &graph);
    let mut builder = PodBuilder::new(&graph);
    let set = builder.resources();
    // Two independent collectives (no producer edge) race for the ring.
    builder.push_collective(&plan, vec![]);
    builder.push_collective(&plan, vec![]);
    let schedule = builder.engine().run();
    assert_eq!(schedule.makespan, 2 * (DISPATCH_OVERHEAD_CYCLES + 10_000));
    // Each ring link carries exactly both transfers, nothing more.
    for &l in &plan.links {
        assert_eq!(schedule.resource_timeline.busy_cycles(set.link(l)), 2 * 10_000, "link {l}");
    }
}

// ---------------------------------------------------------------------
// Seeded random pod corpus
// ---------------------------------------------------------------------

/// Deterministically generates one random pod trace: unit work spread
/// across chips plus occasional ring collectives, with random backward
/// dependency edges.
fn random_pod(seed: u64) -> (LinkGraph, PodBuilder) {
    let mut rng = npu_sim::SplitMix64::new(seed);
    let torus_kind = if seed.is_multiple_of(2) { TorusKind::Torus2D } else { TorusKind::Torus3D };
    let chips = [2usize, 4, 8][(rng.range(0, 2)) as usize];
    let graph = torus(torus_kind, chips);
    let mut builder = PodBuilder::new(&graph);
    let ops = rng.range(6, 40);
    for k in 0..ops {
        let mut producers = Vec::new();
        for _ in 0..rng.range(0, 2) {
            if k > 0 {
                producers.push(rng.range(0, k - 1) as usize);
            }
        }
        producers.sort_unstable();
        producers.dedup();
        if rng.range(0, 9) < 2 {
            let kind = match rng.range(0, 4) {
                0 => CollectiveKind::AllReduce,
                1 => CollectiveKind::ReduceScatter,
                2 => CollectiveKind::AllGather,
                3 => CollectiveKind::AllToAll,
                _ => CollectiveKind::PointToPoint,
            };
            let plan = CollectivePlan::lower(kind, rng.range(100, 20_000), &graph);
            builder.push_collective(&plan, producers);
        } else {
            let chip = rng.range(0, chips as u64 - 1) as usize;
            let unit = [Resource::Sa, Resource::Vu, Resource::HbmDma, Resource::Ici]
                [rng.range(0, 3) as usize];
            builder.push_unit(chip, unit, rng.range(10, 5_000), rng.range(0, 2_000), producers);
        }
    }
    (graph, builder)
}

fn run_pod(seed: u64) -> (LinkGraph, Vec<npu_sim::timeline::OpPhases>, Schedule) {
    let (graph, builder) = random_pod(seed);
    let phases = builder.phases().to_vec();
    let schedule = builder.engine().run();
    (graph, phases, schedule)
}

#[test]
fn seeded_pod_corpus_is_deterministic() {
    for seed in 0..16u64 {
        let (_, phases, schedule) = run_pod(seed);
        let again = run_pod(seed).2;
        assert_eq!(schedule, again, "seed {seed}: corpus generation or engine diverged");
        // And re-running the identical phase vector reproduces the run.
        let set = schedule.resources;
        let replay = TimelineEngine::with_resources(phases, set).run();
        assert_eq!(schedule, replay, "seed {seed}: replay diverged");
    }
}

#[test]
fn seeded_pod_tracks_are_sorted_and_disjoint() {
    for seed in 0..16u64 {
        let (_, _, schedule) = run_pod(seed);
        for idx in 0..schedule.resource_timeline.num_tracks() {
            let track = schedule.resource_timeline.track(ResourceId(u32::try_from(idx).unwrap()));
            for iv in track {
                assert!(iv.start < iv.end, "seed {seed}: empty interval on resource {idx}");
                assert!(iv.end <= schedule.makespan, "seed {seed}: busy past the makespan");
            }
            for w in track.windows(2) {
                assert!(
                    w[0].end <= w[1].start,
                    "seed {seed}: resource {idx} tracks overlap: {w:?}"
                );
            }
        }
    }
}

#[test]
fn seeded_pod_links_are_never_double_booked() {
    for seed in 0..16u64 {
        let (_, phases, schedule) = run_pod(seed);
        let set = schedule.resources;
        for l in 0..set.num_links() {
            let id = set.link(l);
            // Active occupancy span of every collective using this link.
            let mut spans: Vec<(u64, u64)> = phases
                .iter()
                .zip(&schedule.ops)
                .filter(|(p, _)| p.collective.as_ref().is_some_and(|c| c.links.contains(&id)))
                .map(|(p, op)| (op.main_start + p.dispatch_cycles, op.main_end))
                .collect();
            spans.sort_unstable();
            for w in spans.windows(2) {
                assert!(
                    w[0].1 <= w[1].0,
                    "seed {seed}: link {l} double-booked: {:?} overlaps {:?}",
                    w[0],
                    w[1]
                );
            }
        }
    }
}

#[test]
fn seeded_pod_corpus_passes_the_topo_pass_inside_the_window() {
    for seed in 0..16u64 {
        let (graph, phases, schedule) = run_pod(seed);
        let set = schedule.resources;
        let report = analysis::analyze_pod(&phases, &[], &set, &graph, Some(schedule.makespan));
        assert!(report.is_schedulable(), "seed {seed}:\n{}", report.render());
        let window = report.makespan_window.expect("structurally clean pod has a window");
        assert!(
            window.contains(schedule.makespan),
            "seed {seed}: makespan {} outside [{}, {}]",
            schedule.makespan,
            window.lower_cycles,
            window.upper_cycles
        );
    }
}
