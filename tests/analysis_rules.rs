//! One deliberately broken fixture per static-analyzer rule.
//!
//! The analyzer ([`npu_sim::analysis`]) is used as an oracle by the
//! invariant suites and by the evaluation binaries, so this suite proves
//! it is *non-vacuous*: for every rule in the catalog there is an input
//! that triggers exactly that rule id at exactly the documented severity,
//! alongside a clean twin that does not. Illegal dependency structure —
//! unconstructible through `Compiler::compile` — is assembled through the
//! deliberate back door `CompiledGraph::from_parts`; legal-but-suspicious
//! shapes come from `npu_models::fixtures`; serving-record defects are
//! injected by mutating real `RequestGraph`s and `ServingOutcome`s.

use npu_arch::{ChipConfig, FabricKind, Link, LinkGraph, NpuGeneration, PodTopology, TorusKind};
use npu_compiler::{CollectivePlan, CompiledGraph, CompiledOp, Compiler, SramAllocation};
use npu_models::{fixtures, CollectiveKind, DlrmSize, Workload};
use npu_power::{
    ClockGating, DvfsScaling, GatingParams, LeakageRatios, TileGrainRegating, WriteBackGating,
};
use npu_serving::{BatchPolicy, ServingSimulator};
use npu_sim::analysis::{self, rules};
use npu_sim::pod::PodBuilder;
use npu_sim::timeline::{OpPhases, Resource, ResourceId, ResourceSet, ResourceTimeline};
use npu_sim::{Diagnostic, Severity, SramCapacityReport, TraceRecorder};

fn chip() -> ChipConfig {
    ChipConfig::new(NpuGeneration::D, 1)
}

fn compile(graph: &npu_models::OperatorGraph) -> CompiledGraph {
    Compiler::new(chip().spec().clone()).compile(graph)
}

/// Disassembles a compiled graph into the raw parts `from_parts` accepts,
/// so fixtures can corrupt one edge of an otherwise-real compilation.
fn parts(graph: &CompiledGraph) -> (Vec<CompiledOp>, Vec<Vec<usize>>) {
    let ops = graph.ops().to_vec();
    let producers = (0..ops.len()).map(|id| graph.producers_of(id).to_vec()).collect();
    (ops, producers)
}

/// Asserts `diagnostics` contains `rule` at exactly `severity`.
fn assert_rule(diagnostics: &[Diagnostic], rule: &str, severity: Severity) {
    let hit = diagnostics
        .iter()
        .find(|d| d.rule_id == rule)
        .unwrap_or_else(|| panic!("rule {rule} did not fire; got {diagnostics:?}"));
    assert_eq!(hit.severity, severity, "rule {rule} fired at the wrong severity: {hit:?}");
}

fn assert_no_rule(diagnostics: &[Diagnostic], rule: &str) {
    assert!(
        diagnostics.iter().all(|d| d.rule_id != rule),
        "rule {rule} fired on a clean fixture: {diagnostics:?}"
    );
}

// ---------------------------------------------------------------------
// DAG rules
// ---------------------------------------------------------------------

#[test]
fn clean_diamond_compiles_clean() {
    let diagnostics = analysis::check_compiled_graph(&compile(&fixtures::clean_diamond()));
    assert!(diagnostics.is_empty(), "negative control dirtied: {diagnostics:?}");
}

#[test]
fn dag_empty_graph_is_noted() {
    let diagnostics = analysis::check_compiled_graph(&CompiledGraph::empty("void"));
    assert_rule(&diagnostics, rules::DAG_EMPTY_GRAPH, Severity::Note);
    assert_eq!(diagnostics.len(), 1);
}

#[test]
fn dag_producer_out_of_range_is_denied() {
    let (ops, mut producers) = parts(&compile(&fixtures::clean_diamond()));
    producers[3].push(99);
    let diagnostics =
        analysis::check_compiled_graph(&CompiledGraph::from_parts("broken", ops, producers));
    assert_rule(&diagnostics, rules::DAG_PRODUCER_OUT_OF_RANGE, Severity::Deny);
}

#[test]
fn dag_cycle_is_denied() {
    let (ops, mut producers) = parts(&compile(&fixtures::clean_diamond()));
    // b (id 1) now also consumes from c (id 2): a backward edge.
    producers[1].push(2);
    let diagnostics =
        analysis::check_compiled_graph(&CompiledGraph::from_parts("broken", ops, producers));
    assert_rule(&diagnostics, rules::DAG_CYCLE, Severity::Deny);
}

#[test]
fn dag_producer_fused_away_is_denied() {
    let (mut ops, mut producers) = parts(&compile(&fixtures::clean_diamond()));
    // Fold b into a, remap nothing: d still lists the fused-away b.
    ops[1].folded_into = Some(0);
    producers[1].clear();
    let diagnostics =
        analysis::check_compiled_graph(&CompiledGraph::from_parts("broken", ops, producers));
    assert_rule(&diagnostics, rules::DAG_PRODUCER_FUSED_AWAY, Severity::Deny);
    assert_no_rule(&diagnostics, rules::DAG_FOLDED_OP_KEEPS_EDGES);
}

#[test]
fn dag_folded_op_keeping_edges_is_denied() {
    let (mut ops, producers) = parts(&compile(&fixtures::clean_diamond()));
    // Fold b into a but leave b's producer list in place.
    ops[1].folded_into = Some(0);
    let diagnostics =
        analysis::check_compiled_graph(&CompiledGraph::from_parts("broken", ops, producers));
    assert_rule(&diagnostics, rules::DAG_FOLDED_OP_KEEPS_EDGES, Severity::Deny);
}

#[test]
fn dag_folded_into_invalid_is_denied() {
    let (mut ops, mut producers) = parts(&compile(&fixtures::clean_diamond()));
    // b folds into itself — not an anchor reference at all.
    ops[1].folded_into = Some(1);
    producers[1].clear();
    let diagnostics =
        analysis::check_compiled_graph(&CompiledGraph::from_parts("broken", ops, producers));
    assert_rule(&diagnostics, rules::DAG_FOLDED_INTO_INVALID, Severity::Deny);
}

#[test]
fn dag_unreachable_op_is_denied() {
    let (ops, mut producers) = parts(&compile(&fixtures::clean_diamond()));
    // b waits on a dangling producer, so b — and d behind it — can never
    // become ready.
    producers[1].push(99);
    let diagnostics =
        analysis::check_compiled_graph(&CompiledGraph::from_parts("broken", ops, producers));
    assert_rule(&diagnostics, rules::DAG_UNREACHABLE_OP, Severity::Deny);
    assert!(
        diagnostics.iter().filter(|d| d.rule_id == rules::DAG_UNREACHABLE_OP).count() >= 2,
        "the stuck set must include the ops *behind* the dangling producer"
    );
}

#[test]
fn dag_orphan_sink_is_warned() {
    let diagnostics = analysis::check_compiled_graph(&compile(&fixtures::disconnected_op()));
    assert_rule(&diagnostics, rules::DAG_ORPHAN_SINK, Severity::Warn);
}

#[test]
fn dag_redundant_edge_is_noted() {
    let diagnostics =
        analysis::check_compiled_graph(&compile(&fixtures::redundant_transitive_edge()));
    assert_rule(&diagnostics, rules::DAG_REDUNDANT_EDGE, Severity::Note);
    assert_no_rule(&diagnostics, rules::DAG_ORPHAN_SINK);
}

#[test]
fn dag_redundant_edge_pass_skips_past_the_anchor_budget() {
    // A 4097-anchor chain: one past the ancestor-bitset budget. The pass
    // must bail out loudly (a Note), never silently.
    let template = compile(&fixtures::clean_diamond()).ops()[0].clone();
    let n = 4097usize;
    let ops: Vec<CompiledOp> = (0..n).map(|_| template.clone()).collect();
    let producers: Vec<Vec<usize>> =
        (0..n).map(|id| if id == 0 { vec![] } else { vec![id - 1] }).collect();
    let diagnostics =
        analysis::check_compiled_graph(&CompiledGraph::from_parts("mega-chain", ops, producers));
    assert_rule(&diagnostics, rules::DAG_REDUNDANT_EDGE_SKIPPED, Severity::Note);
    assert_no_rule(&diagnostics, rules::DAG_REDUNDANT_EDGE);
}

// ---------------------------------------------------------------------
// Time rules
// ---------------------------------------------------------------------

fn sa_phase(main_cycles: u64, producers: Vec<usize>) -> OpPhases {
    OpPhases {
        unit: Resource::Sa.into(),
        main_cycles,
        dma_cycles: 0,
        dma_lead_cycles: 0,
        fused_vu_cycles: 0,
        dispatch_cycles: 100,
        sa_active_cycles: main_cycles,
        release_cycle: 0,
        producers,
        collective: None,
    }
}

#[test]
fn time_release_length_mismatch_is_denied() {
    let phases = vec![sa_phase(1_000, vec![]), sa_phase(2_000, vec![0])];
    let report = analysis::analyze_phases(&phases, &[0], None);
    assert_rule(&report.diagnostics, rules::TIME_RELEASE_LENGTH_MISMATCH, Severity::Deny);
    assert!(report.makespan_window.is_none());
}

#[test]
fn time_makespan_outside_the_window_is_denied() {
    let phases = vec![sa_phase(1_000, vec![]), sa_phase(2_000, vec![0])];
    // Serial chain: window floor = 100+1000+100+2000 = 3200 = ceiling.
    let clean = analysis::analyze_phases(&phases, &[], Some(3_200));
    assert!(clean.is_schedulable(), "{}", clean.render());
    let window = clean.makespan_window.unwrap();
    assert!(window.contains(3_200));

    let fast = analysis::analyze_phases(&phases, &[], Some(window.lower_cycles - 1));
    assert_rule(&fast.diagnostics, rules::TIME_MAKESPAN_BELOW_FLOOR, Severity::Deny);
    let slow = analysis::analyze_phases(&phases, &[], Some(window.upper_cycles + 1));
    assert_rule(&slow.diagnostics, rules::TIME_MAKESPAN_ABOVE_CEILING, Severity::Deny);
}

// ---------------------------------------------------------------------
// SRAM rules
// ---------------------------------------------------------------------

#[test]
fn sram_peak_and_geometry_over_capacity_fire_on_a_smaller_target_chip() {
    let compiled = compile(&fixtures::clean_diamond());
    let allocation = SramAllocation::allocate(&compiled, chip().spec().sram_geometry());
    // Deploying the same allocation on a 1-byte scratchpad breaks both
    // the layout assumption (Warn) and the live-byte peak (Deny).
    let diagnostics = analysis::check_sram_allocation(&allocation, 1);
    assert_rule(&diagnostics, rules::SRAM_GEOMETRY_OVER_CAPACITY, Severity::Warn);
    assert_rule(&diagnostics, rules::SRAM_PEAK_OVER_CAPACITY, Severity::Deny);
    // On the chip it was built for, the allocation is clean.
    let clean = analysis::check_sram_allocation(&allocation, chip().spec().sram_bytes());
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn sram_op_over_capacity_is_denied() {
    let report = SramCapacityReport::from_parts(1_000, [500, 2_000, 800], 2_000);
    assert!(!report.is_ok());
    let diagnostics = report.diagnostics();
    assert_rule(&diagnostics, rules::SRAM_OP_OVER_CAPACITY, Severity::Deny);
    assert_rule(&diagnostics, rules::SRAM_PEAK_OVER_CAPACITY, Severity::Deny);
}

#[test]
fn sram_tile_over_capacity_is_warned() {
    let compiled = compile(&fixtures::clean_diamond());
    let diagnostics = analysis::check_tile_footprints(&compiled, 1);
    assert_rule(&diagnostics, rules::SRAM_TILE_OVER_CAPACITY, Severity::Warn);
    let clean = analysis::check_tile_footprints(&compiled, chip().spec().sram_bytes());
    assert!(clean.is_empty(), "{clean:?}");
}

// ---------------------------------------------------------------------
// Gating rules
// ---------------------------------------------------------------------

#[test]
fn gate_defaults_are_consistent() {
    let diagnostics = analysis::check_gating_config(&GatingParams::default(), 1.0);
    assert!(diagnostics.is_empty(), "Table 3 defaults flagged: {diagnostics:?}");
}

#[test]
fn gate_bet_below_amortization_is_denied() {
    // A 3-cycle BET cannot amortize a 2-cycle on/off delay under
    // compiler-directed gating (entry cost alone exceeds the interval).
    let params = GatingParams { vu_bet: 3, vu_delay: 2, ..GatingParams::default() };
    let diagnostics = analysis::check_gating_config(&params, 1.0);
    assert_rule(&diagnostics, rules::GATE_BET_BELOW_AMORTIZATION, Severity::Deny);
}

#[test]
fn gate_sram_mode_ordering_is_denied() {
    // Off mode (deeper) with a lower entry threshold than drowsy.
    let params = GatingParams { sram_off_bet: 20, ..GatingParams::default() };
    assert!(params.sram_off_bet < params.sram_sleep_bet);
    let diagnostics = analysis::check_gating_config(&params, 1.0);
    assert_rule(&diagnostics, rules::GATE_SRAM_MODE_ORDERING, Severity::Deny);
}

#[test]
fn gate_leakage_out_of_range_is_denied() {
    let leakage = LeakageRatios { logic_off: 1.5, ..LeakageRatios::default() };
    let params = GatingParams { leakage, ..GatingParams::default() };
    let diagnostics = analysis::check_gating_config(&params, 1.0);
    assert_rule(&diagnostics, rules::GATE_LEAKAGE_OUT_OF_RANGE, Severity::Deny);
}

#[test]
fn gate_setpm_lead_exceeding_dispatch_is_warned() {
    // A 150-cycle HBM wake-up cannot hide behind the 100-cycle dispatch
    // overhead — suspicious but not fatal, so a warning.
    let params = GatingParams { hbm_delay: 150, ..GatingParams::default() };
    let diagnostics = analysis::check_gating_config(&params, 1.0);
    assert_rule(&diagnostics, rules::GATE_SETPM_LEAD_EXCEEDS_DISPATCH, Severity::Warn);
    assert!(
        diagnostics.iter().all(|d| d.severity != Severity::Deny),
        "the lead warning must not escalate to a denial: {diagnostics:?}"
    );
}

#[test]
fn gate_duty_cycle_out_of_range_is_denied() {
    for duty in [0.0, -0.25, 1.5, f64::NAN] {
        let diagnostics = analysis::check_gating_config(&GatingParams::default(), duty);
        assert_rule(&diagnostics, rules::GATE_DUTY_CYCLE_OUT_OF_RANGE, Severity::Deny);
    }
    assert!(analysis::check_gating_config(&GatingParams::default(), 0.5).is_empty());
}

// ---------------------------------------------------------------------
// Power-management policy rules
// ---------------------------------------------------------------------

#[test]
fn policy_scale_out_of_range_is_denied() {
    for scale in [0.0, -0.5, 1.5] {
        let diagnostics = analysis::check_power_policy(&DvfsScaling { scale });
        assert_rule(&diagnostics, rules::POLICY_SCALE_OUT_OF_RANGE, Severity::Deny);
    }
    assert!(analysis::check_power_policy(&DvfsScaling { scale: 0.6 }).is_empty());
}

#[test]
fn policy_residual_out_of_range_is_denied() {
    for residual in [-0.1, 1.5] {
        let diagnostics = analysis::check_power_policy(&ClockGating { residual });
        assert_rule(&diagnostics, rules::POLICY_RESIDUAL_OUT_OF_RANGE, Severity::Deny);
    }
    assert!(analysis::check_power_policy(&ClockGating { residual: 0.55 }).is_empty());
}

#[test]
fn policy_writeback_inconsistent_is_denied() {
    // 4 KiB at 64 B/cycle needs 64 streaming cycles; 10 is understated.
    let understated = WriteBackGating {
        bet: 200,
        delay: 10,
        leak: 0.002,
        writeback_cycles: 10,
        segment_bytes: 4096,
        bytes_per_cycle: 64.0,
    };
    let diagnostics = analysis::check_power_policy(&understated);
    assert_rule(&diagnostics, rules::POLICY_WRITEBACK_INCONSISTENT, Severity::Deny);

    // A BET that cannot amortize the entry cost (2 x delay + write-back).
    let unamortized = WriteBackGating { bet: 84, writeback_cycles: 64, ..understated };
    let diagnostics = analysis::check_power_policy(&unamortized);
    assert_rule(&diagnostics, rules::POLICY_WRITEBACK_INCONSISTENT, Severity::Deny);

    let clean = WriteBackGating::for_segment(&GatingParams::default(), 4096, 64.0);
    assert!(analysis::check_power_policy(&clean).is_empty());
}

#[test]
fn policy_transition_inconsistent_is_denied() {
    // A tile is a fraction of the array: its wake cannot be slower than
    // the full array's.
    let broken = TileGrainRegating { bet: 469, delay: 10, leak: 0.03, tile_delay: 11 };
    let diagnostics = analysis::check_power_policy(&broken);
    assert_rule(&diagnostics, rules::POLICY_TRANSITION_INCONSISTENT, Severity::Deny);

    let clean = TileGrainRegating { tile_delay: 1, ..broken };
    assert!(analysis::check_power_policy(&clean).is_empty());
}

// ---------------------------------------------------------------------
// Serving rules
// ---------------------------------------------------------------------

fn request_graph() -> (npu_models::RequestGraph, u64) {
    let workload = Workload::dlrm(DlrmSize::Small).with_batch(24);
    let server = ServingSimulator::new(NpuGeneration::D, 1, workload);
    let rg = workload
        .try_build_request_graph(server.parallelism(), &[0, 1_000, 2_000])
        .expect("three requests over a 24-sample batch lower cleanly");
    let total: u64 = rg.requests.iter().map(|s| s.samples).sum();
    (rg, total)
}

#[test]
fn serve_release_regression_is_denied() {
    let (mut rg, total) = request_graph();
    assert!(analysis::check_request_graph(&rg, total).is_empty());
    rg.requests[2].release_cycle = rg.requests[1].release_cycle - 1;
    let diagnostics = analysis::check_request_graph(&rg, total);
    assert_rule(&diagnostics, rules::SERVE_RELEASE_REGRESSION, Severity::Deny);
}

#[test]
fn serve_batch_not_conserved_is_denied() {
    let (mut rg, total) = request_graph();
    rg.requests[0].samples += 1;
    let diagnostics = analysis::check_request_graph(&rg, total);
    assert_rule(&diagnostics, rules::SERVE_BATCH_NOT_CONSERVED, Severity::Deny);
}

#[test]
fn serve_span_out_of_range_is_denied() {
    let (mut rg, total) = request_graph();
    rg.requests[0].ops.end = rg.graph.len() + 5;
    let diagnostics = analysis::check_request_graph(&rg, total);
    assert_rule(&diagnostics, rules::SERVE_SPAN_OUT_OF_RANGE, Severity::Deny);

    // A span swallowing the merge op is equally malformed.
    let (mut rg, total) = request_graph();
    rg.requests[2].ops.end = rg.merge_id + 1;
    let diagnostics = analysis::check_request_graph(&rg, total);
    assert_rule(&diagnostics, rules::SERVE_SPAN_OUT_OF_RANGE, Severity::Deny);
}

#[test]
fn serve_record_causality_rules_are_denied_on_corrupted_outcomes() {
    let server =
        ServingSimulator::new(NpuGeneration::D, 1, Workload::dlrm(DlrmSize::Small).with_batch(8));
    let outcome = server.run(&[0, 50_000, 400_000], &BatchPolicy::Static { batch: 1 });
    let clean = outcome.analyze();
    assert!(clean.is_schedulable(), "{}", clean.render());

    // A request recorded as arriving *after* its batch dispatched.
    let mut broken = outcome.clone();
    broken.requests[1].arrival_cycle = broken.requests[1].dispatch_cycle + 1;
    let report = broken.analyze();
    assert_rule(&report.diagnostics, rules::SERVE_DISPATCH_BEFORE_ARRIVAL, Severity::Deny);

    // A batch recorded as completing before it dispatched.
    let mut broken = outcome;
    broken.batches[2].completion_cycle = broken.batches[2].dispatch_cycle - 1;
    let report = broken.analyze();
    assert_rule(&report.diagnostics, rules::SERVE_COMPLETION_BEFORE_DISPATCH, Severity::Deny);
}

// ---------------------------------------------------------------------
// Topo rules (pod fabric / collective lowering)
// ---------------------------------------------------------------------

fn ring4() -> LinkGraph {
    LinkGraph::torus(&PodTopology::for_chips(TorusKind::Torus2D, 4))
}

#[test]
fn clean_pod_passes_the_topo_rules() {
    let graph = ring4();
    let mut builder = PodBuilder::new(&graph);
    builder.push_unit(0, Resource::Sa, 1_000, 0, vec![]);
    let plan = CollectivePlan::lower(CollectiveKind::AllReduce, 9_000, &graph);
    builder.push_collective(&plan, vec![0]);
    let set = builder.resources();
    let report = analysis::analyze_pod(builder.phases(), &[], &set, &graph, None);
    assert!(report.is_schedulable(), "negative control dirtied: {}", report.render());
    for rule in [
        rules::TOPO_LINK_ENDPOINT_OUT_OF_RANGE,
        rules::TOPO_ROUTE_INCOMPLETE,
        rules::TOPO_CHIP_COUNT_MISMATCH,
        rules::TOPO_COLLECTIVE_LINKS_MISMATCH,
    ] {
        assert_no_rule(&report.diagnostics, rule);
    }
}

#[test]
fn topo_link_endpoint_out_of_range_is_denied() {
    // The `from_links` back door skips validation exactly so this rule
    // has something to catch.
    let graph = LinkGraph::from_links(
        FabricKind::Torus(TorusKind::Torus2D),
        2,
        2,
        vec![Link { src: 0, dst: 7 }, Link { src: 1, dst: 0 }],
    );
    let diagnostics = analysis::check_link_graph(&graph);
    assert_rule(&diagnostics, rules::TOPO_LINK_ENDPOINT_OUT_OF_RANGE, Severity::Deny);
}

#[test]
fn topo_disconnected_fabric_is_denied() {
    // Two chips wired in one direction only: 1 -> 0 has no route.
    let graph = LinkGraph::from_links(FabricKind::FatTree, 2, 2, vec![Link { src: 0, dst: 1 }]);
    let diagnostics = analysis::check_link_graph(&graph);
    assert_rule(&diagnostics, rules::TOPO_ROUTE_INCOMPLETE, Severity::Deny);
    assert_no_rule(&diagnostics, rules::TOPO_LINK_ENDPOINT_OUT_OF_RANGE);
}

#[test]
fn topo_chip_count_mismatch_is_denied() {
    let graph = ring4();
    let fewer_chips = ResourceSet::pod(2, graph.num_links());
    let diagnostics = analysis::check_pod_consistency(&fewer_chips, &graph);
    assert_rule(&diagnostics, rules::TOPO_CHIP_COUNT_MISMATCH, Severity::Deny);
    // Link-count disagreement is the same family: set and fabric no
    // longer describe one machine.
    let fewer_links = ResourceSet::pod(graph.num_chips(), 1);
    let diagnostics = analysis::check_pod_consistency(&fewer_links, &graph);
    assert_rule(&diagnostics, rules::TOPO_CHIP_COUNT_MISMATCH, Severity::Deny);
    let clean = ResourceSet::pod(graph.num_chips(), graph.num_links());
    assert!(analysis::check_pod_consistency(&clean, &graph).is_empty());
}

#[test]
fn topo_collective_links_mismatch_is_denied() {
    let graph = ring4();
    let mut builder = PodBuilder::new(&graph);
    let plan = CollectivePlan::lower(CollectiveKind::AllGather, 8_000, &graph);
    builder.push_collective(&plan, vec![]);
    let set = builder.resources();

    // (a) A link id outside the set's link range.
    let mut phases = builder.phases().to_vec();
    phases[0].collective.as_mut().expect("collective phase").links[0] = set.link_unchecked(99);
    let diagnostics = analysis::check_collective_phases(&phases, &set, &graph);
    assert_rule(&diagnostics, rules::TOPO_COLLECTIVE_LINKS_MISMATCH, Severity::Deny);

    // (b) A link set that is not the fabric's collective ring.
    let mut phases = builder.phases().to_vec();
    phases[0].collective.as_mut().expect("collective phase").links.pop();
    let diagnostics = analysis::check_collective_phases(&phases, &set, &graph);
    assert_rule(&diagnostics, rules::TOPO_COLLECTIVE_LINKS_MISMATCH, Severity::Deny);

    // (c) Per-hop steps that no longer sum to the phase's transfer.
    let mut phases = builder.phases().to_vec();
    phases[0].collective.as_mut().expect("collective phase").step_cycles[0] += 1;
    let diagnostics = analysis::check_collective_phases(&phases, &set, &graph);
    assert_rule(&diagnostics, rules::TOPO_COLLECTIVE_LINKS_MISMATCH, Severity::Deny);

    // The untouched lowering is clean.
    let diagnostics = analysis::check_collective_phases(builder.phases(), &set, &graph);
    assert_no_rule(&diagnostics, rules::TOPO_COLLECTIVE_LINKS_MISMATCH);
}

#[test]
fn topo_parallelism_infeasible_is_denied() {
    // 98 GB of DLRM tables cannot fit one chip: the evaluation layer
    // denies the deployment instead of fabricating a parallelism config.
    let evaluator = regate::Evaluator::new(NpuGeneration::D);
    let report = evaluator
        .try_evaluate(&Workload::dlrm(DlrmSize::Large), 1)
        .expect_err("infeasible deployment must be denied");
    assert_rule(&report.diagnostics, rules::TOPO_PARALLELISM_INFEASIBLE, Severity::Deny);
}

// ---------------------------------------------------------------------
// Observability rules (trace exports)
// ---------------------------------------------------------------------

/// A single-chip recorder/timeline pair agreeing on one busy interval per
/// injected slice — the clean base the obs.* fixtures then corrupt.
fn trace_fixture(slices: &[(usize, u64, u64)]) -> (TraceRecorder, ResourceTimeline) {
    let set = ResourceSet::single_chip();
    let mut recorder = TraceRecorder::for_set(&set);
    let mut timeline = ResourceTimeline::for_set(&set);
    let sa = ResourceId(0);
    for &(op, start, end) in slices {
        recorder.record_raw_slice(sa, op, start, end);
        timeline.record(sa, start, end);
    }
    timeline.finalize();
    (recorder, timeline)
}

#[test]
fn obs_clean_observed_pod_run_exports_clean() {
    // The real path: a pod pipeline run observed by a recorder agrees
    // with the schedule's own resource timeline on every track.
    let trace = npu_sim::pod::pipeline_trace(&ring4(), &[2_000, 5_000, 3_000, 1_000], 4);
    let engine = trace.engine();
    let mut recorder = TraceRecorder::for_set(&engine.resources());
    let schedule = engine.run_with_scratch_observed(
        &[],
        &mut npu_sim::EngineScratch::default(),
        &mut recorder,
    );
    let diagnostics =
        analysis::check_trace_export(&recorder, &schedule.resource_timeline, schedule.makespan);
    assert!(diagnostics.is_empty(), "negative control dirtied: {diagnostics:?}");
}

#[test]
fn obs_track_overlap_is_denied() {
    // Two slices sharing cycles on one track: a unit cannot run two
    // operators at once. The timeline merges them, so only the trace's
    // per-slice view exposes the collision.
    let (recorder, timeline) = trace_fixture(&[(0, 0, 1_000), (1, 900, 2_000)]);
    let diagnostics = analysis::check_trace_export(&recorder, &timeline, 2_000);
    assert_rule(&diagnostics, rules::OBS_TRACK_OVERLAP, Severity::Deny);
    assert_no_rule(&diagnostics, rules::OBS_EVENT_OUT_OF_WINDOW);
    assert_no_rule(&diagnostics, rules::OBS_TIMELINE_MISMATCH);

    // Abutting slices are legal: end == next start is not an overlap.
    let (recorder, timeline) = trace_fixture(&[(0, 0, 1_000), (1, 1_000, 2_000)]);
    assert!(analysis::check_trace_export(&recorder, &timeline, 2_000).is_empty());
}

#[test]
fn obs_event_out_of_window_is_denied() {
    // A slice past the makespan: the export claims work after the run
    // ended.
    let (recorder, timeline) = trace_fixture(&[(0, 0, 1_000), (1, 1_500, 2_500)]);
    let diagnostics = analysis::check_trace_export(&recorder, &timeline, 2_000);
    assert_rule(&diagnostics, rules::OBS_EVENT_OUT_OF_WINDOW, Severity::Deny);
    assert_no_rule(&diagnostics, rules::OBS_TRACK_OVERLAP);
    assert_no_rule(&diagnostics, rules::OBS_TIMELINE_MISMATCH);
}

#[test]
fn obs_timeline_mismatch_is_denied() {
    // A slice the schedule never recorded: the trace and the resource
    // timeline must agree record for record after merging.
    let (mut recorder, timeline) = trace_fixture(&[(0, 0, 1_000)]);
    recorder.record_raw_slice(ResourceId(0), 1, 1_200, 1_400);
    let diagnostics = analysis::check_trace_export(&recorder, &timeline, 2_000);
    assert_rule(&diagnostics, rules::OBS_TIMELINE_MISMATCH, Severity::Deny);
    assert_no_rule(&diagnostics, rules::OBS_TRACK_OVERLAP);
    assert_no_rule(&diagnostics, rules::OBS_EVENT_OUT_OF_WINDOW);

    // The converse direction — busy intervals the trace missed — is the
    // same rule: drop the slice but keep the timeline record.
    let set = ResourceSet::single_chip();
    let recorder = TraceRecorder::for_set(&set);
    let mut missing = ResourceTimeline::for_set(&set);
    missing.record(ResourceId(0), 0, 1_000);
    missing.finalize();
    let diagnostics = analysis::check_trace_export(&recorder, &missing, 2_000);
    assert_rule(&diagnostics, rules::OBS_TIMELINE_MISMATCH, Severity::Deny);
}

// ---------------------------------------------------------------------
// Determinism
// ---------------------------------------------------------------------

#[test]
fn reports_are_byte_identical_across_runs() {
    // Clean deployment pass, twice.
    let compiled = compile(&fixtures::clean_diamond());
    let gating = GatingParams::default();
    let a = analysis::analyze_deployment(&compiled, chip().spec(), Some(&gating));
    let b = analysis::analyze_deployment(&compiled, chip().spec(), Some(&gating));
    assert_eq!(a, b, "clean deployment reports diverged across runs");
    assert_eq!(a.render(), b.render());

    // A dirty report, twice: broken edges, broken gating, measured
    // makespan outside the window — the diagnostic order and every byte
    // of every message must be stable.
    let dirty = || {
        let (ops, mut producers) = parts(&compiled);
        producers[1].push(2);
        producers[3].push(99);
        let graph = CompiledGraph::from_parts("dirty", ops, producers);
        let mut report = analysis::analyze_deployment(
            &graph,
            chip().spec(),
            Some(&GatingParams { vu_bet: 3, vu_delay: 2, ..GatingParams::default() }),
        );
        let phases = vec![sa_phase(1_000, vec![]), sa_phase(2_000, vec![0])];
        report.merge(analysis::analyze_phases(&phases, &[], Some(1)));
        report
    };
    let a = dirty();
    let b = dirty();
    assert!(!a.is_schedulable());
    assert_eq!(a, b, "dirty reports diverged across runs");
    assert_eq!(a.render(), b.render(), "rendered diagnostics diverged across runs");
}
