//! Workspace-level integration tests: the full pipeline (workload graph →
//! compiler → simulator → power model → ReGate evaluation) on a spread of
//! workloads and NPU generations.

use npu_arch::{ChipConfig, ComponentKind, NpuGeneration, ParallelismConfig};
use npu_compiler::Compiler;
use npu_models::{DiffusionModel, DlrmSize, LlamaModel, LlmPhase, Workload};
use npu_sim::Simulator;
use regate::{Design, Evaluator};

fn quick_diffusion(model: DiffusionModel) -> Workload {
    let mut wl = Workload::diffusion(model);
    if let Workload::Diffusion(ref mut cfg) = wl {
        cfg.steps = 2;
    }
    wl
}

#[test]
fn full_pipeline_runs_for_every_workload_class() {
    let workloads = [
        Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Training),
        Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill),
        Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Decode),
        Workload::dlrm(DlrmSize::Medium),
        quick_diffusion(DiffusionModel::DitXl),
        quick_diffusion(DiffusionModel::Gligen),
    ];
    let evaluator = Evaluator::new(NpuGeneration::D);
    for workload in workloads {
        let eval = evaluator.evaluate(&workload, 8);
        assert!(eval.design(Design::NoPg).energy.total_j() > 0.0, "{workload}: zero energy");
        for design in Design::GATED {
            let savings = eval.energy_savings(design);
            assert!(
                (0.0..0.8).contains(&savings),
                "{workload}/{design}: implausible savings {savings}"
            );
            assert!(eval.performance_overhead(design) < 0.06);
        }
    }
}

#[test]
fn pipeline_is_deterministic() {
    let workload = Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode);
    let evaluator = Evaluator::new(NpuGeneration::D);
    let a = evaluator.evaluate(&workload, 1);
    let b = evaluator.evaluate(&workload, 1);
    assert_eq!(
        a.design(Design::ReGateFull).energy.total_j(),
        b.design(Design::ReGateFull).energy.total_j()
    );
    assert_eq!(a.simulation.total_cycles(), b.simulation.total_cycles());
}

#[test]
fn component_activity_is_consistent_across_crates() {
    // The simulator's activity, the compiler's anchors, and the evaluation's
    // energy breakdown must describe the same execution.
    let chip = ChipConfig::new(NpuGeneration::D, 1);
    let workload = Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Decode);
    let graph = workload.build_graph(&ParallelismConfig::single());
    let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
    let sim = Simulator::new(chip).run(&compiled);
    assert_eq!(sim.timings().len(), compiled.num_anchors());
    // Operator spans overlap on the global clock (prefetch of operator k+1
    // during compute of operator k), so their sum is an upper bound of the
    // makespan; the serial per-op sum bounds it from above as well.
    let span_sum: u64 = sim.timings().iter().map(|t| t.duration_cycles).sum();
    assert!(span_sum >= sim.total_cycles());
    assert!(sim.total_cycles() <= sim.serial_cycles());
    for kind in ComponentKind::ALL {
        assert!(
            sim.activity().busy_cycles(kind) <= sim.total_cycles(),
            "{kind:?}: merged busy intervals cannot exceed the makespan"
        );
        assert_eq!(sim.activity().busy_cycles(kind), sim.busy_timeline().busy_cycles(kind));
    }
}

#[test]
fn multi_generation_evaluation_is_stable() {
    let workload = Workload::dlrm(DlrmSize::Small);
    for generation in NpuGeneration::ALL {
        let eval = Evaluator::new(generation).evaluate(&workload, 8);
        let full = eval.energy_savings(Design::ReGateFull);
        assert!(full > 0.05, "{generation}: DLRM savings {full} too small");
        assert!(full < 0.7, "{generation}: DLRM savings {full} too large");
    }
}

#[test]
fn larger_deployments_do_not_break_the_pipeline() {
    let workload = Workload::llm(LlamaModel::Llama3_405B, LlmPhase::Decode).with_batch(64);
    let eval = Evaluator::new(NpuGeneration::D).evaluate(&workload, 64);
    assert!(eval.parallelism.num_chips() == 64);
    assert!(eval.design(Design::NoPg).energy.total_j() > 0.0);
    assert!(eval.energy_savings(Design::ReGateFull) > 0.0);
}
