//! Randomized-topology invariant harness for the DAG-aware timeline
//! engine.
//!
//! Instead of hand-picked operator chains, this suite drives the
//! [`TimelineEngine`] with a *seeded random-DAG generator* (deterministic
//! SplitMix64, no external dependencies): layered DAGs with varied fan-in
//! and fan-out, skip edges that create diamonds, and a mix of SA, VU,
//! demand-gather, and ICI operators whose phase shapes mirror what the
//! real per-operator profiler emits. For every sampled graph it checks
//! the scheduling invariants no refactor may break:
//!
//! (a) **causality** — no operator's main phase starts before every one
//!     of its producers has finished;
//! (b) **track discipline** — per-component busy intervals are non-empty,
//!     sorted, disjoint, and bounded by the makespan;
//! (c) **bounds** — the makespan never exceeds the serial per-op sum
//!     (work conservation under the demand/prefetch channel split) and
//!     never beats the critical-path / longest-phase lower bounds;
//! (d) **accounting** — the idle histogram's totals equal the component
//!     idle cycles, bucket by bucket and in aggregate;
//! (e) **chain regression** — a pure chain DAG reproduces the pre-DAG
//!     (PR 2) engine bit for bit: makespan, every scheduled phase time,
//!     and the full idle histogram, pinned by FNV-1a digests recorded
//!     from the chain engine immediately before the DAG generalization.
//!
//! The corpus covers ≥ 50 random DAGs per run and asserts that fan-in,
//! fan-out, and diamond topologies all actually occur — a generator
//! regression that quietly degenerates to chains fails the suite.

use npu_arch::ComponentKind;
use npu_sim::timeline::{EngineScratch, OpPhases, Resource, Schedule, TimelineEngine};
use npu_sim::{IdleHistogram, SplitMix64 as Rng, TraceRecorder};
use regate_bench::Fnv1a as Fnv;

/// Number of random DAG seeds the invariant sweep covers.
const NUM_DAG_SEEDS: u64 = 60;

/// Random per-operator phase durations mirroring the shapes the real
/// profiler emits: SA ops with streamed prefetch and optional fused VU
/// tails, VU ops with modest operand streams, demand gathers whose main
/// phase *is* the transfer, and ICI collectives. `dma_lead_cycles` is 0,
/// matching the production profiler's intra-operator double-buffering
/// idealization (the serial-sum bound is only provable under it).
fn random_phases(rng: &mut Rng) -> OpPhases {
    match rng.range(0, 9) {
        0..=4 => {
            let main = rng.range(200, 8_000);
            let dma = rng.range(0, 6_000);
            let fused = if rng.range(0, 2) == 0 { rng.range(0, main / 2) } else { 0 };
            let active = rng.range(main / 2, main);
            OpPhases {
                unit: Resource::Sa.into(),
                main_cycles: main,
                dma_cycles: dma,
                dma_lead_cycles: 0,
                fused_vu_cycles: fused,
                dispatch_cycles: 100,
                sa_active_cycles: active,
                release_cycle: 0,
                producers: Vec::new(),
                collective: None,
            }
        }
        5 | 6 => {
            let main = rng.range(100, 3_000);
            let dma = rng.range(0, 2_000);
            OpPhases {
                unit: Resource::Vu.into(),
                main_cycles: main,
                dma_cycles: dma,
                dma_lead_cycles: 0,
                fused_vu_cycles: 0,
                dispatch_cycles: 100,
                sa_active_cycles: 0,
                release_cycle: 0,
                producers: Vec::new(),
                collective: None,
            }
        }
        7 | 8 => {
            let main = rng.range(300, 10_000);
            OpPhases {
                unit: Resource::HbmDma.into(),
                main_cycles: main,
                dma_cycles: 0,
                dma_lead_cycles: 0,
                fused_vu_cycles: 0,
                dispatch_cycles: 100,
                sa_active_cycles: 0,
                release_cycle: 0,
                producers: Vec::new(),
                collective: None,
            }
        }
        _ => {
            let main = rng.range(500, 20_000);
            OpPhases {
                unit: Resource::Ici.into(),
                main_cycles: main,
                dma_cycles: 0,
                dma_lead_cycles: 0,
                fused_vu_cycles: 0,
                dispatch_cycles: 100,
                sa_active_cycles: 0,
                release_cycle: 0,
                producers: Vec::new(),
                collective: None,
            }
        }
    }
}

/// Layered random DAG: 2–6 layers of 1–4 operators; every operator in
/// layer `l > 0` draws 1–3 producers from layer `l - 1` (fan-in), and
/// with probability ~1/3 one extra skip edge to any earlier operator
/// (diamonds / long-range joins). Layer-0 operators are sources.
fn random_dag(seed: u64) -> Vec<OpPhases> {
    let mut rng = Rng::new(0xDA6_0000 ^ seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
    let layers = rng.range(2, 6);
    let mut ops: Vec<OpPhases> = Vec::new();
    let mut prev_layer: Vec<usize> = Vec::new();
    for layer in 0..layers {
        let width = rng.range(1, 4);
        let mut this_layer = Vec::with_capacity(width as usize);
        for _ in 0..width {
            let mut op = random_phases(&mut rng);
            if layer > 0 {
                let fan_in = rng.range(1, 3).min(prev_layer.len() as u64);
                let mut producers = Vec::new();
                for _ in 0..fan_in {
                    producers.push(prev_layer[rng.range(0, prev_layer.len() as u64 - 1) as usize]);
                }
                let id = ops.len();
                if rng.range(0, 2) == 0 {
                    producers.push(rng.range(0, id as u64 - 1) as usize);
                }
                producers.sort_unstable();
                producers.dedup();
                op.producers = producers;
            }
            this_layer.push(ops.len());
            ops.push(op);
        }
        prev_layer = this_layer;
    }
    ops
}

/// Chain used by the golden regression: `len` drawn first, then the ops.
fn golden_chain(seed: u64) -> Vec<OpPhases> {
    let mut rng = Rng::new(0xC0FF_EE00 ^ seed.wrapping_mul(0x9E37_79B9));
    let len = rng.range(1, 40);
    OpPhases::chain((0..len).map(|_| random_phases(&mut rng)).collect())
}

fn digest_ops(schedule: &Schedule) -> u64 {
    let mut fnv = Fnv::new();
    for s in &schedule.ops {
        fnv.push(s.dma_start);
        fnv.push(s.dma_end);
        fnv.push(s.main_start);
        fnv.push(s.main_end);
        fnv.push(s.finish);
    }
    fnv.digest()
}

fn digest_histogram(schedule: &Schedule) -> u64 {
    let histogram = IdleHistogram::from_timeline(&schedule.timeline, schedule.makespan);
    let mut fnv = Fnv::new();
    for (i, kind) in ComponentKind::ALL.iter().enumerate() {
        fnv.push(i as u64);
        for b in histogram.buckets(*kind) {
            fnv.push(b.lower);
            fnv.push(b.upper);
            fnv.push(b.count);
            fnv.push(b.total_cycles);
        }
    }
    fnv.digest()
}

/// Serial cost of one operator: intra-operator overlap of compute, fused
/// post-processing, and DMA, plus dispatch — what the pre-timeline engine
/// charged, and what `SimulationResult::serial_cycles` sums.
fn serial_cost(p: &OpPhases) -> u64 {
    p.main_cycles.max(p.dma_cycles).max(p.fused_vu_cycles) + p.dispatch_cycles
}

/// Critical-path lower bound over the producer DAG: every operator's main
/// phase must wait for all producers, then spend dispatch plus
/// max(main, fused) cycles; any DMA stream lower-bounds its own finish.
fn critical_path(ops: &[OpPhases]) -> u64 {
    let mut finish = vec![0u64; ops.len()];
    for (k, p) in ops.iter().enumerate() {
        let ready = p.producers.iter().map(|&q| finish[q]).max().unwrap_or(0);
        finish[k] =
            (ready + p.dispatch_cycles + p.main_cycles.max(p.fused_vu_cycles)).max(p.dma_cycles);
    }
    finish.into_iter().max().unwrap_or(0)
}

// ---------------------------------------------------------------------
// (a)–(d): invariants over the random-DAG corpus
// ---------------------------------------------------------------------

#[test]
fn no_op_computes_before_any_producer_finishes() {
    for seed in 0..NUM_DAG_SEEDS {
        let ops = random_dag(seed);
        let producers: Vec<Vec<usize>> = ops.iter().map(|p| p.producers.clone()).collect();
        let schedule = TimelineEngine::new(ops).run();
        for (k, list) in producers.iter().enumerate() {
            for &p in list {
                assert!(
                    schedule.ops[k].main_start >= schedule.ops[p].finish,
                    "seed {seed}: op {k} computes at {} before producer {p} finishes at {}",
                    schedule.ops[k].main_start,
                    schedule.ops[p].finish
                );
            }
        }
    }
}

#[test]
fn busy_intervals_stay_disjoint_sorted_and_bounded() {
    for seed in 0..NUM_DAG_SEEDS {
        let schedule = TimelineEngine::new(random_dag(seed)).run();
        for kind in ComponentKind::ALL {
            let intervals = schedule.timeline.intervals(kind);
            for iv in intervals {
                assert!(iv.start < iv.end, "seed {seed}/{kind:?}: empty interval {iv:?}");
                assert!(
                    iv.end <= schedule.makespan,
                    "seed {seed}/{kind:?}: interval {iv:?} past makespan {}",
                    schedule.makespan
                );
            }
            for pair in intervals.windows(2) {
                assert!(
                    pair[0].end < pair[1].start,
                    "seed {seed}/{kind:?}: overlapping or abutting intervals {pair:?}"
                );
            }
        }
    }
}

#[test]
fn makespan_sits_between_critical_path_and_serial_sum() {
    let mut strictly_overlapped = 0u64;
    for seed in 0..NUM_DAG_SEEDS {
        let ops = random_dag(seed);
        let serial: u64 = ops.iter().map(serial_cost).sum();
        let lower = critical_path(&ops);
        let schedule = TimelineEngine::new(ops).run();
        assert!(
            schedule.makespan <= serial,
            "seed {seed}: makespan {} exceeds the serial sum {serial}",
            schedule.makespan
        );
        assert!(
            schedule.makespan >= lower,
            "seed {seed}: makespan {} beats the critical-path bound {lower}",
            schedule.makespan
        );
        if schedule.makespan < serial {
            strictly_overlapped += 1;
        }
    }
    // DAGs with more than one operator essentially always overlap
    // *something*; if nothing ever does, the engine regressed to serial.
    assert!(
        strictly_overlapped > NUM_DAG_SEEDS / 2,
        "only {strictly_overlapped}/{NUM_DAG_SEEDS} DAGs showed any overlap"
    );
}

#[test]
fn idle_histogram_totals_agree_with_component_idle_cycles() {
    for seed in 0..NUM_DAG_SEEDS {
        let schedule = TimelineEngine::new(random_dag(seed)).run();
        let histogram = IdleHistogram::from_timeline(&schedule.timeline, schedule.makespan);
        for kind in ComponentKind::ALL {
            let busy = schedule.timeline.busy_cycles(kind);
            let idle_from_gaps: u64 = schedule
                .timeline
                .idle_intervals(kind, schedule.makespan)
                .iter()
                .map(|iv| iv.len())
                .sum();
            assert_eq!(
                histogram.total_idle_cycles(kind),
                idle_from_gaps,
                "seed {seed}/{kind:?}: histogram misses idle cycles"
            );
            assert_eq!(
                busy + idle_from_gaps,
                schedule.makespan,
                "seed {seed}/{kind:?}: busy + idle does not cover the makespan"
            );
            for bucket in histogram.buckets(kind) {
                assert!(bucket.count > 0, "seed {seed}/{kind:?}: empty bucket");
                assert!(
                    bucket.total_cycles >= bucket.count * bucket.lower,
                    "seed {seed}/{kind:?}: bucket total below its lower bound"
                );
            }
        }
    }
}

#[test]
fn corpus_covers_fan_in_fan_out_diamonds_and_all_units() {
    let mut fan_in = 0u64;
    let mut fan_out = 0u64;
    let mut diamonds = 0u64;
    let mut units = [0u64; 4];
    for seed in 0..NUM_DAG_SEEDS {
        let ops = random_dag(seed);
        assert!(ops.len() <= 128, "generator outgrew the u128 ancestor bitsets");
        let mut consumers = vec![0u64; ops.len()];
        // Ancestor bitsets (ops are capped well below 128).
        let mut ancestors = vec![0u128; ops.len()];
        for (k, p) in ops.iter().enumerate() {
            if p.producers.len() >= 2 {
                fan_in += 1;
            }
            for &q in &p.producers {
                consumers[q] += 1;
                ancestors[k] |= ancestors[q] | (1u128 << q);
            }
            // Diamond: two distinct producers reachable from one common
            // ancestor (two vertex-disjoint paths meet at `k`).
            for (i, &a) in p.producers.iter().enumerate() {
                for &b in &p.producers[i + 1..] {
                    let closure_a = ancestors[a] | (1u128 << a);
                    let closure_b = ancestors[b] | (1u128 << b);
                    if closure_a & closure_b != 0 {
                        diamonds += 1;
                    }
                }
            }
            // Single-chip phase vectors use the enum-order dense ids.
            units[p.unit.index()] += 1;
        }
        fan_out += consumers.iter().filter(|&&c| c >= 2).count() as u64;
    }
    assert!(fan_in >= 20, "only {fan_in} fan-in nodes across the corpus");
    assert!(fan_out >= 20, "only {fan_out} fan-out nodes across the corpus");
    assert!(diamonds >= 10, "only {diamonds} diamonds across the corpus");
    assert!(units.iter().all(|&c| c >= 10), "unit mix too thin: {units:?}");
}

#[test]
fn static_analyzer_accepts_the_corpus_and_brackets_every_makespan() {
    // The analyzer is an oracle for the engine: every random DAG must
    // come back schedulable (zero Deny diagnostics), and the static
    // makespan window it predicts *before any event fires* must contain
    // the makespan the event loop actually measures.
    for seed in 0..NUM_DAG_SEEDS {
        let ops = random_dag(seed);
        let schedule = TimelineEngine::new(ops.clone()).run();
        let report = npu_sim::analysis::analyze_phases(&ops, &[], Some(schedule.makespan));
        assert!(
            report.is_schedulable(),
            "seed {seed}: analyzer denied a live schedule:\n{}",
            report.render()
        );
        let window = report.makespan_window.expect("schedulable graphs carry a window");
        assert!(
            window.contains(schedule.makespan),
            "seed {seed}: measured makespan {} outside static window [{}, {}]",
            schedule.makespan,
            window.lower_cycles,
            window.upper_cycles
        );
    }
}

#[test]
fn static_analyzer_rejects_a_corrupted_corpus_graph() {
    // Non-vacuity check for the oracle above: corrupting one producer id
    // in a corpus DAG must flip the verdict.
    let mut ops = random_dag(0);
    let dangling = ops.len() + 7;
    let last = ops.len() - 1;
    ops[last].producers.push(dangling);
    let report = npu_sim::analysis::analyze_phases(&ops, &[], None);
    assert!(!report.is_schedulable(), "dangling producer went undetected");
    assert!(report.makespan_window.is_none(), "unschedulable graphs must not predict a window");
}

#[test]
fn schedules_are_deterministic_across_runs() {
    for seed in [0, 7, 23, 41] {
        let a = TimelineEngine::new(random_dag(seed)).run();
        let b = TimelineEngine::new(random_dag(seed)).run();
        assert_eq!(a, b, "seed {seed}: two runs over the same DAG diverged");
    }
}

#[test]
fn observed_runs_are_bit_identical_to_unobserved_over_the_corpus() {
    // The observability contract: attaching a TraceRecorder must not
    // perturb scheduling. Every field of every `ScheduledOp` — and the
    // digests the golden tables pin — must match the NullObserver path.
    for seed in 0..NUM_DAG_SEEDS {
        let engine = TimelineEngine::new(random_dag(seed));
        let mut recorder = TraceRecorder::for_set(&engine.resources());
        let observed =
            engine.run_with_scratch_observed(&[], &mut EngineScratch::default(), &mut recorder);
        let unobserved = engine.run();
        assert_eq!(
            observed, unobserved,
            "seed {seed}: an observed run diverged from the unobserved schedule"
        );
        assert_eq!(digest_ops(&observed), digest_ops(&unobserved), "seed {seed}");
        assert_eq!(digest_histogram(&observed), digest_histogram(&unobserved), "seed {seed}");
    }
}

#[test]
fn trace_exports_are_byte_identical_across_same_seed_runs() {
    // The exported Chrome trace JSON is a pure function of the schedule:
    // two same-seed runs render the same bytes.
    for seed in [0, 7, 23, 41] {
        let export = |seed: u64| {
            let engine = TimelineEngine::new(random_dag(seed));
            let mut recorder = TraceRecorder::for_set(&engine.resources());
            let schedule =
                engine.run_with_scratch_observed(&[], &mut EngineScratch::default(), &mut recorder);
            // Exports must also pass the obs.* analyzer rules.
            let diagnostics = npu_sim::analysis::check_trace_export(
                &recorder,
                &schedule.resource_timeline,
                schedule.makespan,
            );
            assert!(diagnostics.is_empty(), "seed {seed}: {diagnostics:?}");
            recorder.chrome_json()
        };
        assert_eq!(export(seed), export(seed), "seed {seed}: trace JSON diverged across runs");
    }
}

// ---------------------------------------------------------------------
// (e): bit-for-bit chain regression against the pre-DAG engine
// ---------------------------------------------------------------------

/// `(seed, ops, makespan, FNV-1a of every ScheduledOp field, FNV-1a of
/// the idle histogram)` recorded by running `golden_chain(seed)` through
/// the PR-2 chain engine (implicit `op-1` producer rule) immediately
/// before the DAG generalization landed.
///
/// Histogram digests re-recorded when per-segment SRAM gating moved the
/// SRAM off the engine's blanket busy track (PR 4): `TimelineEngine` no
/// longer fabricates an always-busy `[0, makespan)` SRAM interval — the
/// simulator layer above maps the allocator's segment lifetimes onto the
/// clock instead — so at the raw-`Schedule` layer the SRAM now shows one
/// makespan-length idle interval where it previously showed none. Every
/// makespan and every phase-time digest (column 4) is bit-identical to
/// the original PR-2 recording: the scheduling itself is untouched.
const CHAIN_GOLDEN: [(u64, usize, u64, u64, u64); 20] = [
    (0, 2, 3152, 0x7EF0BDF6C2E1C0D5, 0x2EF408C54C5D3BBF),
    (1, 39, 164319, 0x29A7943465B34765, 0x50FBBBEEE2B964F4),
    (2, 32, 144622, 0x8FAE94D6F1B7CFAC, 0xF2EC70C454E0750C),
    (3, 10, 57529, 0xFC0E54118F3B1FCA, 0x390A899CA438C6DE),
    (4, 6, 20085, 0x33F9E46CA786273C, 0x5DBA51D0F8646751),
    (5, 15, 76242, 0x72003AA3D0440055, 0x0BE92FE41D175277),
    (6, 31, 108339, 0xD8022CFCF7933271, 0x69934E28C06D1DA1),
    (7, 8, 39631, 0xD09C17C359CB9992, 0x68206ECCCFE7A991),
    (8, 7, 40796, 0xFE190D90F8D4E908, 0x1BC250C7E130B6D6),
    (9, 4, 15711, 0x164E696CFB6E3204, 0xF5BC3877F6EAC9CC),
    (10, 32, 135899, 0xA6A0C6AA14202451, 0x3D67B036AF29A532),
    (11, 22, 110102, 0x837304AD9845CDA2, 0xBA16D5BBF4EAF638),
    (12, 16, 66728, 0x69CE31081005A566, 0x51CEB3CB3CEFC69F),
    (13, 24, 96863, 0xDED2EFE155168DA1, 0xAB0E2D0B81E07298),
    (14, 21, 105013, 0xC8B63AEE3BC65490, 0x9138D240FC986203),
    (15, 38, 162816, 0x90F0D8E05383BB4B, 0xFC367AFAA3464C0F),
    (16, 36, 212933, 0x46FA93D3B24A6FEC, 0xD947ACDFAA65D96D),
    (17, 12, 36631, 0x88515ED59C287894, 0xB16B09D60800DFC7),
    (18, 13, 73396, 0x38B99E1680A47349, 0xA710FBB9AC7FE918),
    (19, 6, 41109, 0xCC194ED5DDE25791, 0x4546FC87057E84B2),
];

#[test]
fn pure_chains_reproduce_the_pre_dag_engine() {
    for (seed, len, makespan, ops_digest, hist_digest) in CHAIN_GOLDEN {
        let ops = golden_chain(seed);
        assert_eq!(ops.len(), len, "seed {seed}: generator drifted");
        let schedule = TimelineEngine::new(ops).run();
        assert_eq!(
            schedule.makespan, makespan,
            "seed {seed}: chain makespan drifted from the pre-DAG engine"
        );
        assert_eq!(
            digest_ops(&schedule),
            ops_digest,
            "seed {seed}: a scheduled phase time differs from the pre-DAG engine"
        );
        assert_eq!(
            digest_histogram(&schedule),
            hist_digest,
            "seed {seed}: the idle histogram differs from the pre-DAG engine"
        );
    }
}

#[test]
fn chains_also_satisfy_the_dag_invariants() {
    // The chain corpus runs through the same invariant net as the DAGs:
    // a chain is just the degenerate one-producer topology.
    for (seed, ..) in CHAIN_GOLDEN {
        let ops = golden_chain(seed);
        let serial: u64 = ops.iter().map(serial_cost).sum();
        let lower = critical_path(&ops);
        let schedule = TimelineEngine::new(ops).run();
        assert!(schedule.makespan <= serial, "seed {seed}");
        assert!(schedule.makespan >= lower, "seed {seed}");
        for pair in schedule.ops.windows(2) {
            assert!(pair[1].main_start >= pair[0].finish, "seed {seed}: {pair:?}");
        }
    }
}
