//! End-to-end energy/power sanity checks: conservation, bounds, and
//! cross-design consistency of the evaluation engine.

use npu_arch::{ComponentKind, NpuGeneration, NpuSpec};
use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};
use regate::{Design, Evaluator};

#[test]
fn energy_is_conserved_across_the_breakdown() {
    let evaluator = Evaluator::new(NpuGeneration::D);
    let eval = evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill), 1);
    for design in Design::ALL {
        let e = &eval.design(design).energy;
        let sum: f64 = ComponentKind::ALL.iter().map(|&k| e.component(k).total_j()).sum();
        assert!((sum - e.total_j()).abs() < 1e-6 * e.total_j().max(1.0));
        assert!(e.static_j() >= 0.0 && e.dynamic_j() >= 0.0);
    }
}

#[test]
fn dynamic_energy_is_design_invariant() {
    // Power gating removes leakage, not useful work: dynamic energy must be
    // identical across designs.
    let evaluator = Evaluator::new(NpuGeneration::D);
    let eval = evaluator.evaluate(&Workload::dlrm(DlrmSize::Small), 8);
    let reference = eval.design(Design::NoPg).energy.dynamic_j();
    for design in Design::GATED {
        let dynamic = eval.design(design).energy.dynamic_j();
        assert!((dynamic - reference).abs() < 1e-9 * reference.max(1.0), "{design}");
    }
}

#[test]
fn static_energy_never_increases_with_more_capable_designs() {
    let evaluator = Evaluator::new(NpuGeneration::D);
    for workload in [
        Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Decode),
        Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill),
        Workload::dlrm(DlrmSize::Large),
    ] {
        let eval = evaluator.evaluate(&workload, 8);
        let chain =
            [Design::NoPg, Design::ReGateBase, Design::ReGateHw, Design::ReGateFull, Design::Ideal];
        for pair in chain.windows(2) {
            let before = eval.design(pair[0]).energy.static_j();
            let after = eval.design(pair[1]).energy.static_j();
            assert!(
                after <= before * 1.001,
                "{workload}: {} static {} < {} static {}",
                pair[1].label(),
                after,
                pair[0].label(),
                before
            );
        }
    }
}

#[test]
fn average_power_is_bounded_by_tdp() {
    let spec = NpuSpec::generation(NpuGeneration::D);
    let evaluator = Evaluator::new(NpuGeneration::D);
    for workload in [
        Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill),
        Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
        Workload::dlrm(DlrmSize::Small),
    ] {
        let eval = evaluator.evaluate(&workload, 8);
        for design in Design::ALL {
            let avg = eval.average_power_w(design);
            assert!(avg > 0.0 && avg <= spec.tdp_watts, "{workload}/{design}: {avg} W");
            assert!(eval.peak_power_w(design) <= spec.tdp_watts * 1.2);
        }
    }
}

#[test]
fn ideal_savings_bounded_by_static_fraction() {
    // Power gating can at most remove all static energy, so the Ideal
    // roofline's savings can never exceed the workload's static fraction.
    let evaluator = Evaluator::new(NpuGeneration::D);
    for workload in [
        Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Prefill),
        Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Decode),
        Workload::dlrm(DlrmSize::Medium),
    ] {
        let eval = evaluator.evaluate(&workload, 8);
        let static_fraction = eval.design(Design::NoPg).energy.static_fraction();
        let ideal = eval.energy_savings(Design::Ideal);
        assert!(
            ideal <= static_fraction + 1e-9,
            "{workload}: ideal {ideal} exceeds static fraction {static_fraction}"
        );
    }
}

#[test]
fn memory_bound_workloads_save_more_than_compute_bound() {
    let evaluator = Evaluator::new(NpuGeneration::D);
    let decode = evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
    let prefill = evaluator.evaluate(&Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill), 1);
    assert!(
        decode.energy_savings(Design::ReGateFull) > prefill.energy_savings(Design::ReGateFull),
        "decode ({}) should save more than prefill ({})",
        decode.energy_savings(Design::ReGateFull),
        prefill.energy_savings(Design::ReGateFull)
    );
}
