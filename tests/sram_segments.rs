//! Invariant net for the per-segment SRAM timeline (§4.3).
//!
//! Two corpora drive the checks:
//!
//! * a **seeded random-DAG corpus** (deterministic SplitMix64, the same
//!   idiom as `dag_invariants.rs`): random layered DAGs scheduled by the
//!   [`TimelineEngine`], paired with synthetic double-buffered allocations
//!   built through [`SramAllocation::from_buffers`], so the
//!   [`SegmentTimeline`] builder is exercised over thousands of
//!   topology × lifetime combinations;
//! * the **full pipeline** (workload → compile → allocate → simulate) for
//!   representative Table-4 workloads, checking the timeline the
//!   energy model actually consumes.
//!
//! Invariants, per segment: live intervals are non-empty, sorted,
//! disjoint, and bounded by the makespan; live plus dead cycles cover the
//! makespan exactly; the union-weighted live bytes at any instant never
//! exceed the scratchpad capacity; and the SRAM's busy track on the
//! component timeline equals the union of live segment intervals. The
//! final test pins the case that motivated the move off the span-weighted
//! capacity model: two concurrent operators' live segments must *sum*,
//! where the old normalization averaged them.

use npu_arch::{ChipConfig, ComponentKind, NpuGeneration, ParallelismConfig, SramGeometry};
use npu_compiler::{BufferLifetime, Compiler, SramAllocation};
use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};
use npu_sim::timeline::{OpPhases, Resource, TimelineEngine};
use npu_sim::{CycleInterval, SegmentTimeline, Simulator, SplitMix64 as Rng, SramCapacityReport};

/// Number of random DAG seeds the invariant sweep covers.
const NUM_SEEDS: u64 = 60;

/// Random operator phases across all four units, with random producer
/// edges into earlier operators (layering kept implicit: any subset of
/// earlier indices is a valid topological producer set).
fn random_dag(rng: &mut Rng, n: usize) -> Vec<OpPhases> {
    let mut ops = Vec::with_capacity(n);
    for k in 0..n {
        let unit = match rng.range(0, 3) {
            0 => Resource::Sa,
            1 => Resource::Vu,
            2 => Resource::HbmDma,
            _ => Resource::Ici,
        };
        let main = rng.range(100, 8_000);
        let dma = if matches!(unit, Resource::Sa | Resource::Vu) { rng.range(0, 4_000) } else { 0 };
        let mut producers = Vec::new();
        if k > 0 {
            for _ in 0..rng.range(0, 2) {
                producers.push(rng.range(0, k as u64 - 1) as usize);
            }
            producers.sort_unstable();
            producers.dedup();
        }
        ops.push(OpPhases {
            unit: unit.into(),
            main_cycles: main,
            dma_cycles: dma,
            dma_lead_cycles: 0,
            fused_vu_cycles: 0,
            dispatch_cycles: 100,
            sa_active_cycles: if unit == Resource::Sa { main } else { 0 },
            release_cycle: 0,
            producers,
            collective: None,
        });
    }
    ops
}

/// Synthetic double-buffered allocation over a 64-segment scratchpad:
/// buffers alternate between the bottom and top half (each at most a full
/// half), with the standard prefetch-to-consumption lifetime, so the
/// instantaneous sum across halves can never exceed the capacity — which
/// is exactly the invariant the timeline must preserve.
fn random_allocation(rng: &mut Rng, geometry: SramGeometry, n: usize) -> SramAllocation {
    let half = geometry.total_bytes() / 2;
    let buffers = (0..n)
        .map(|i| BufferLifetime {
            anchor_index: i,
            start_addr: if i % 2 == 0 { 0 } else { half },
            size_bytes: rng.range(1, half),
            live_from: i.saturating_sub(1),
            live_to: (i + 1).min(n - 1),
        })
        .collect();
    SramAllocation::from_buffers(geometry, buffers, n)
}

fn check_segment_invariants(tl: &SegmentTimeline, capacity_bytes: u64, label: &str) {
    let makespan = tl.makespan();
    let mut prev_end = 0usize;
    for band in tl.bands() {
        assert!(band.num_segments > 0, "{label}: empty band");
        assert!(band.first_segment >= prev_end, "{label}: bands overlap or are unsorted");
        prev_end = band.first_segment + band.num_segments;
        assert!(prev_end <= tl.num_segments(), "{label}: band past the scratchpad");
        assert!(!band.live.is_empty(), "{label}: ever-live band without intervals");
        for iv in &band.live {
            assert!(iv.start < iv.end, "{label}: empty interval {iv:?}");
            assert!(iv.end <= makespan, "{label}: interval {iv:?} past makespan {makespan}");
        }
        for pair in band.live.windows(2) {
            assert!(pair[0].end < pair[1].start, "{label}: overlapping/abutting {pair:?}");
        }
        let dead: u64 = tl.dead_intervals_of(band).iter().map(CycleInterval::len).sum();
        assert_eq!(
            band.live_cycles() + dead,
            makespan,
            "{label}: live + dead must cover the makespan"
        );
    }
    // Union-weighted live bytes at any instant stay within the capacity.
    // The live set only changes at interval boundaries, so the peak scan
    // plus boundary samples cover every distinct instant. Note this bound
    // is partly structural — disjoint bands can never out-count the
    // segments that tile the scratchpad — so the corpus pairs it with the
    // *allocator-dominance* cross-checks below, which a builder bug
    // (lifetimes mapped onto the wrong operators' spans) does break.
    assert!(
        tl.peak_live_bytes() <= capacity_bytes,
        "{label}: peak live bytes {} exceed capacity {capacity_bytes}",
        tl.peak_live_bytes()
    );
    for band in tl.bands() {
        for iv in &band.live {
            for at in [iv.start, iv.end.saturating_sub(1)] {
                assert!(
                    tl.live_bytes_at(at) <= capacity_bytes,
                    "{label}: live bytes at {at} exceed capacity"
                );
            }
        }
    }
}

#[test]
fn random_dag_corpus_satisfies_segment_invariants() {
    let geometry = SramGeometry::new(256 * 1024, 4096);
    for seed in 0..NUM_SEEDS {
        let mut rng = Rng::new(0x5EA7_0000 ^ seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let n = rng.range(1, 24) as usize;
        let ops = random_dag(&mut rng, n);
        let alloc = random_allocation(&mut rng, geometry, n);
        let schedule = TimelineEngine::new(ops).run();
        let tl = SegmentTimeline::build(&alloc, &schedule.ops, schedule.makespan);
        let label = format!("seed {seed}");
        check_segment_invariants(&tl, geometry.total_bytes(), &label);
        // Every buffer's lifetime must be represented: the segments it
        // covers are live at least while its owning anchors run.
        assert!(tl.ever_live_segments() > 0, "{label}: nothing live");
        // The union never exceeds the makespan and matches band totals.
        let union_cycles: u64 = tl.live_union().iter().map(CycleInterval::len).sum();
        assert!(union_cycles <= schedule.makespan, "{label}");
        let max_band: u64 = tl.bands().iter().map(|b| b.live_cycles()).max().unwrap_or(0);
        assert!(union_cycles >= max_band, "{label}: union smaller than a member band");
        // Allocator dominance: while anchor `a`'s main phase runs, every
        // buffer live at `a` has been mapped onto the clock, so the
        // instantaneous union must cover at least the allocator's
        // anchor-level live segments. Unlike the capacity bound, this is
        // NOT structural: mapping a lifetime onto the wrong operator's
        // span (or dropping an anchor range) fails it.
        for (anchor, sched) in schedule.ops.iter().enumerate() {
            let at = sched.main_start;
            assert!(
                tl.live_bytes_at(at)
                    >= alloc.live_segments_at(anchor) as u64 * geometry.segment_bytes(),
                "{label}: at cycle {at} the union undercounts anchor {anchor}'s live segments"
            );
        }
    }
}

#[test]
fn random_corpus_is_deterministic() {
    let geometry = SramGeometry::new(256 * 1024, 4096);
    for seed in [0u64, 11, 42] {
        let build = || {
            let mut rng = Rng::new(0x5EA7_0000 ^ seed.wrapping_mul(0x2545_F491_4F6C_DD1D));
            let n = rng.range(1, 24) as usize;
            let ops = random_dag(&mut rng, n);
            let alloc = random_allocation(&mut rng, geometry, n);
            let schedule = TimelineEngine::new(ops).run();
            SegmentTimeline::build(&alloc, &schedule.ops, schedule.makespan)
        };
        assert_eq!(build(), build(), "seed {seed}: timeline construction diverged");
    }
}

fn simulate(workload: Workload, chips: usize) -> npu_sim::SimulationResult {
    let chip = ChipConfig::new(NpuGeneration::D, chips);
    let parallelism = workload
        .default_parallelism(chip.spec(), chips)
        .unwrap_or(ParallelismConfig::new(chips, 1, 1));
    let graph = workload.build_graph(&parallelism);
    let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
    Simulator::new(chip).run(&compiled)
}

#[test]
fn full_pipeline_segment_timelines_satisfy_the_invariants() {
    for (workload, chips) in [
        (Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1),
        (Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill), 1),
        (Workload::dlrm(DlrmSize::Medium), 8),
    ] {
        let result = simulate(workload, chips);
        let tl = result.segment_timeline();
        let capacity = result.chip().spec().sram_bytes();
        let label = workload.label();
        assert_eq!(tl.makespan(), result.total_cycles(), "{label}");
        assert_eq!(
            tl.num_segments() as u64 * tl.segment_bytes(),
            capacity,
            "{label}: segments must tile the scratchpad"
        );
        check_segment_invariants(tl, capacity, &label);
        assert!(tl.ever_live_segments() > 0, "{label}");
        // The component timeline's SRAM busy track is exactly the union
        // of live segment intervals — the blanket [0, makespan) record is
        // gone.
        assert_eq!(
            result.busy_timeline().intervals(ComponentKind::Sram),
            tl.live_union().as_slice(),
            "{label}: SRAM busy track must equal the live-segment union"
        );
        // And the release-mode capacity audit passes.
        assert!(SramCapacityReport::for_simulation(&result).is_ok(), "{label}");
        // Allocator dominance (the non-structural direction): while an
        // operator's main phase runs, the instantaneous live union must
        // cover at least the live bytes the allocator reported for that
        // anchor (`OpTiming::sram_live_bytes`); a lifetime mapped onto
        // the wrong operator's span fails this.
        for timing in result.timings() {
            let at = timing.compute_start_cycle;
            assert!(
                tl.live_bytes_at(at) >= timing.sram_live_bytes,
                "{label}: at cycle {at} the union ({}) undercounts {}'s live bytes ({})",
                tl.live_bytes_at(at),
                timing.name,
                timing.sram_live_bytes
            );
        }
    }
}

#[test]
fn decode_leaves_most_segments_dead() {
    // The §4.3 motivation: LLM decode touches a small working set, so the
    // overwhelming majority of the 128 MiB scratchpad's segments are dead
    // for the entire execution — recoverable only by per-segment gating.
    let result = simulate(Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode), 1);
    let tl = result.segment_timeline();
    let ever_live = tl.ever_live_segments() as f64 / tl.num_segments() as f64;
    assert!(ever_live < 0.25, "decode keeps {ever_live:.3} of segments ever-live");
    let peak = tl.peak_live_bytes() as f64 / result.chip().spec().sram_bytes() as f64;
    assert!(peak < 0.25, "decode peak live fraction {peak:.3}");
}

fn source(unit: Resource, main: u64) -> OpPhases {
    OpPhases {
        unit: unit.into(),
        main_cycles: main,
        dma_cycles: 0,
        dma_lead_cycles: 0,
        fused_vu_cycles: 0,
        dispatch_cycles: 100,
        sa_active_cycles: if unit == Resource::Sa { main } else { 0 },
        release_cycle: 0,
        producers: Vec::new(),
        collective: None,
    }
}

#[test]
fn concurrent_fan_out_live_segments_sum_where_the_old_model_averaged() {
    // Two independent (source) operators run concurrently on different
    // units, each holding one quarter of the scratchpad in its own
    // double-buffer half. At any overlapped instant *half* the scratchpad
    // is live. The deleted span-weighted model
    // (`total_cycles * Σ span·frac / Σ span`) averaged each operator's
    // quarter over its span and never saw the coexistence — the exact
    // mis-accounting ISSUE 4 fixes.
    let g = SramGeometry::new(64 * 1024, 4096);
    let buffer = |anchor: usize, addr: u64, from: usize, to: usize| BufferLifetime {
        anchor_index: anchor,
        start_addr: addr,
        size_bytes: 16 * 1024,
        live_from: from,
        live_to: to,
    };
    let alloc =
        SramAllocation::from_buffers(g, vec![buffer(0, 0, 0, 0), buffer(1, 32 * 1024, 1, 1)], 2);
    let schedule =
        TimelineEngine::new(vec![source(Resource::Sa, 10_000), source(Resource::Vu, 10_000)]).run();
    let tl = SegmentTimeline::build(&alloc, &schedule.ops, schedule.makespan);
    check_segment_invariants(&tl, g.total_bytes(), "fan-out");

    // Mid-run both operators' live segments coexist: the bytes sum.
    let mid = schedule.makespan / 2;
    assert_eq!(tl.live_bytes_at(mid), 32 * 1024, "concurrent live bytes must sum");

    // New model: time-averaged live fraction over segments.
    let live_cycles: u64 = tl.bands().iter().map(|b| b.live_cycles() * b.num_segments as u64).sum();
    let new_frac = live_cycles as f64 / (g.num_segments() as f64 * schedule.makespan as f64);
    // Old model: per-operator live fraction, span-weighted.
    let mut weighted = 0.0;
    let mut span_sum = 0.0;
    for (anchor, op) in schedule.ops.iter().enumerate() {
        let span = (op.finish - op.span_start()) as f64;
        weighted += span * alloc.live_bytes_at(anchor) as f64 / g.total_bytes() as f64;
        span_sum += span;
    }
    let old_frac = weighted / span_sum;
    assert!((old_frac - 0.25).abs() < 0.01, "old span-weighted fraction {old_frac}");
    assert!((new_frac - 0.5).abs() < 0.02, "new per-segment fraction {new_frac}");
    assert!(
        new_frac > old_frac + 0.2,
        "the models must diverge on concurrent liveness: old {old_frac}, new {new_frac}"
    );
}
