//! Invariant net for the arrival-driven serving layer (`npu-serving`).
//!
//! A seeded arrival corpus (deterministic [`SplitMix64`]-driven Poisson
//! traces plus fixed-rate and bursty shapes) drives the full pipeline —
//! arrivals → batch formation → request-graph lowering → release-time
//! scheduling — and asserts the properties no refactor may break:
//!
//! (a) **release causality** — no anchor's scheduled span starts before
//!     the release cycle its batch dispatched at;
//! (b) **determinism** — FIFO batch formation and the resulting schedule
//!     are bit-for-bit reproducible per seed;
//! (c) **load monotonicity** — stretching the same arrival order to lower
//!     offered load never shrinks the makespan;
//! (d) **saturation identity** — at saturating load (every request at
//!     cycle 0) the serving schedule reproduces the existing cycle-0
//!     batch run *bit for bit*, pinned by an FNV-1a digest over every
//!     scheduled phase time and the full idle histogram;
//! (e) **accounting** — queueing + service = latency per request, and the
//!     low-load trace exposes long inter-request idle intervals that the
//!     unmodified interval-walking evaluator actually gates.

use npu_arch::{ChipConfig, ComponentKind, NpuGeneration};
use npu_compiler::Compiler;
use npu_models::{DlrmSize, LlamaModel, LlmPhase, Workload};
use npu_serving::{ArrivalProcess, BatchPolicy, ServingOutcome, ServingReport, ServingSimulator};
use npu_sim::{IdleHistogram, SimulationResult, Simulator};
use regate::{Design, Evaluator};
use regate_bench::Fnv1a as Fnv;

/// Per-request sample count used throughout the corpus.
const SAMPLES_PER_REQUEST: u64 = 32;

fn dlrm_server() -> ServingSimulator {
    ServingSimulator::new(
        NpuGeneration::D,
        1,
        Workload::dlrm(DlrmSize::Small).with_batch(SAMPLES_PER_REQUEST),
    )
}

fn corpus_policies() -> Vec<BatchPolicy> {
    vec![
        BatchPolicy::Static { batch: 4 },
        BatchPolicy::DynamicWindow { max_batch: 4, max_wait_cycles: 30_000 },
    ]
}

/// Digest of everything the schedule decided: every phase time of every
/// operator plus the complete per-component idle histogram.
fn schedule_digest(sim: &SimulationResult) -> u64 {
    let mut fnv = Fnv::new();
    fnv.push(sim.total_cycles());
    for t in sim.timings() {
        fnv.push(t.start_cycle);
        fnv.push(t.compute_start_cycle);
        fnv.push(t.duration_cycles);
    }
    let histogram = sim.idle_histogram();
    for kind in ComponentKind::ALL {
        for b in histogram.buckets(kind) {
            fnv.push(b.lower);
            fnv.push(b.count);
            fnv.push(b.total_cycles);
        }
    }
    fnv.digest()
}

fn check_release_causality(outcome: &ServingOutcome, label: &str) {
    let sim = &outcome.simulation;
    let mut released_late = 0usize;
    for (k, t) in sim.timings().iter().enumerate() {
        let release = sim.release_of(k);
        assert!(
            t.start_cycle >= release,
            "{label}: anchor {k} ({}) starts at {} before its release {release}",
            t.name,
            t.start_cycle
        );
        if release > 0 {
            released_late += 1;
        }
    }
    if outcome.batches.iter().any(|b| b.dispatch_cycle > 0) {
        assert!(released_late > 0, "{label}: no anchor carried a non-zero release");
    }
}

fn check_request_accounting(outcome: &ServingOutcome, label: &str) {
    assert!(!outcome.requests.is_empty(), "{label}: no requests recorded");
    for (i, r) in outcome.requests.iter().enumerate() {
        assert!(r.dispatch_cycle >= r.arrival_cycle, "{label}: request {i} dispatched early");
        assert!(r.completion_cycle >= r.dispatch_cycle, "{label}: request {i} completed early");
        assert_eq!(
            r.queueing_cycles() + r.service_cycles(),
            r.latency_cycles(),
            "{label}: request {i} latency split does not add up"
        );
        let batch = &outcome.batches[r.batch];
        assert_eq!(batch.dispatch_cycle, r.dispatch_cycle, "{label}: request {i} batch mismatch");
        assert_eq!(batch.completion_cycle, r.completion_cycle);
        assert!(
            r.completion_cycle <= outcome.makespan_cycles(),
            "{label}: completion past the makespan"
        );
    }
    // Batches tile the request index space FIFO.
    let mut cursor = 0usize;
    for b in &outcome.batches {
        assert_eq!(b.requests.start, cursor, "{label}: batches must be contiguous FIFO chunks");
        cursor = b.requests.end;
    }
    assert_eq!(cursor, outcome.requests.len());
}

#[test]
fn seeded_corpus_honours_releases_and_accounting() {
    let server = dlrm_server();
    for seed in 0..6u64 {
        let arrivals =
            ArrivalProcess::Poisson { mean_interval_cycles: 40_000.0 * (seed as f64 + 0.5), seed }
                .arrivals(10);
        for policy in corpus_policies() {
            let label = format!("seed {seed} / {}", policy.label());
            let outcome = server.run(&arrivals, &policy);
            check_release_causality(&outcome, &label);
            check_request_accounting(&outcome, &label);
        }
    }
    // The bursty shape exercises the widest dispatch spread.
    let bursty = ArrivalProcess::BurstyOnOff {
        burst_len: 4,
        intra_burst_cycles: 1_000,
        off_cycles: 500_000,
    }
    .arrivals(12);
    for policy in corpus_policies() {
        let outcome = server.run(&bursty, &policy);
        check_release_causality(&outcome, &format!("bursty / {}", policy.label()));
        check_request_accounting(&outcome, &format!("bursty / {}", policy.label()));
    }
}

#[test]
fn static_analyzer_verifies_every_corpus_outcome() {
    // The analyzer is an oracle over the serving pipeline: every corpus
    // outcome must verify with zero Deny diagnostics, and the static
    // makespan window computed from the batch release vector must contain
    // the makespan the event loop measured.
    let server = dlrm_server();
    let mut traces: Vec<(String, Vec<u64>)> = Vec::new();
    for seed in 0..6u64 {
        traces.push((
            format!("poisson-{seed}"),
            ArrivalProcess::Poisson { mean_interval_cycles: 40_000.0 * (seed as f64 + 0.5), seed }
                .arrivals(10),
        ));
    }
    traces.push((
        "bursty".to_string(),
        ArrivalProcess::BurstyOnOff {
            burst_len: 4,
            intra_burst_cycles: 1_000,
            off_cycles: 500_000,
        }
        .arrivals(12),
    ));
    for (name, arrivals) in &traces {
        for policy in corpus_policies() {
            let label = format!("{name} / {}", policy.label());
            let outcome = server.run(arrivals, &policy);
            let report = server.verify(&outcome);
            assert!(
                report.is_schedulable(),
                "{label}: analyzer denied a live serving outcome:\n{}",
                report.render()
            );
            let window = report.makespan_window.expect("verified outcomes carry a window");
            assert!(
                window.contains(outcome.makespan_cycles()),
                "{label}: measured makespan {} outside static window [{}, {}]",
                outcome.makespan_cycles(),
                window.lower_cycles,
                window.upper_cycles
            );
        }
    }
}

#[test]
fn batch_formation_and_schedule_are_deterministic_per_seed() {
    let server = dlrm_server();
    let process = ArrivalProcess::Poisson { mean_interval_cycles: 60_000.0, seed: 99 };
    let policy = BatchPolicy::DynamicWindow { max_batch: 4, max_wait_cycles: 25_000 };
    let a = server.run(&process.arrivals(12), &policy);
    let b = server.run(&process.arrivals(12), &policy);
    assert_eq!(a.batches, b.batches, "FIFO batch formation must be deterministic per seed");
    assert_eq!(a.requests, b.requests);
    assert_eq!(schedule_digest(&a.simulation), schedule_digest(&b.simulation));
    // A different seed produces a different trace and (generically) a
    // different schedule.
    let other = server.run(
        &ArrivalProcess::Poisson { mean_interval_cycles: 60_000.0, seed: 100 }.arrivals(12),
        &policy,
    );
    assert_ne!(
        schedule_digest(&a.simulation),
        schedule_digest(&other.simulation),
        "different seeds collapsed to one schedule"
    );
}

#[test]
fn makespan_grows_monotonically_as_offered_load_falls() {
    // The same request count at sinking offered load (growing inter-
    // arrival gap) can only push completions later: the makespan is
    // non-decreasing in the gap, for both policies.
    let server = dlrm_server();
    let intervals = [0u64, 20_000, 100_000, 400_000, 1_600_000];
    for policy in corpus_policies() {
        let mut last = 0u64;
        for &interval in &intervals {
            let arrivals = ArrivalProcess::FixedRate { interval_cycles: interval }.arrivals(8);
            let outcome = server.run(&arrivals, &policy);
            assert!(
                outcome.makespan_cycles() >= last,
                "{}: makespan {} shrank below {last} at interval {interval}",
                policy.label(),
                outcome.makespan_cycles()
            );
            last = outcome.makespan_cycles();
        }
        // The widest gap dominates the makespan outright.
        let saturated = server.run(&ArrivalProcess::saturating().arrivals(8), &policy);
        assert!(
            last > 2 * saturated.makespan_cycles(),
            "{}: low load ({last}) should dwarf the saturated makespan ({})",
            policy.label(),
            saturated.makespan_cycles()
        );
    }
}

/// The saturating serving run and the classic cycle-0 batch run for the
/// same workload, compiled from the same per-chip lowering.
fn saturating_pair(
    workload_per_request: Workload,
    requests: usize,
    num_chips: usize,
) -> (ServingOutcome, SimulationResult) {
    let server = ServingSimulator::new(NpuGeneration::D, num_chips, workload_per_request);
    let arrivals = ArrivalProcess::saturating().arrivals(requests);
    let outcome = server.run(&arrivals, &BatchPolicy::Static { batch: requests });
    // The pre-serving path: one batch of all samples, lowered into
    // `requests` chains, everything ready at cycle 0.
    let chip = ChipConfig::new(NpuGeneration::D, num_chips);
    let total = workload_per_request.with_batch(workload_per_request.batch() * requests as u64);
    let graph = total.build_request_graph(server.parallelism(), requests as u64);
    let compiled = Compiler::new(chip.spec().clone()).compile(&graph);
    let reference = Simulator::new(chip).run(&compiled);
    (outcome, reference)
}

#[test]
fn saturating_load_reproduces_the_cycle0_batch_run_bit_for_bit() {
    for (workload, requests, chips) in [
        (Workload::dlrm(DlrmSize::Small).with_batch(SAMPLES_PER_REQUEST), 4usize, 1usize),
        (Workload::dlrm(DlrmSize::Medium).with_batch(64), 4, 8),
        (Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode).with_batch(2), 4, 1),
    ] {
        let label = workload.label();
        let (outcome, reference) = saturating_pair(workload, requests, chips);
        assert_eq!(
            outcome.makespan_cycles(),
            reference.total_cycles(),
            "{label}: saturated makespan diverges from the cycle-0 run"
        );
        // Bit-for-bit: every phase time and the full idle histogram agree,
        // pinned through one digest.
        assert_eq!(
            schedule_digest(&outcome.simulation),
            schedule_digest(&reference),
            "{label}: saturated schedule digest diverges from the cycle-0 batch run"
        );
        // And the strongest form: the timing vectors themselves.
        assert_eq!(outcome.simulation.timings(), reference.timings(), "{label}");
        assert_eq!(
            outcome.simulation.busy_timeline(),
            reference.busy_timeline(),
            "{label}: busy tracks diverge"
        );
        // Every release really was zero: the identity case.
        for k in 0..outcome.simulation.timings().len() {
            assert_eq!(outcome.simulation.release_of(k), 0, "{label}: anchor {k}");
        }
    }
}

#[test]
fn cached_compile_path_matches_fresh_compile_bit_for_bit() {
    // The tentpole identity: `ServingSimulator::run` reuses compiled batch
    // subgraphs and a prepared simulator across repeated batch shapes, and
    // must reproduce the fresh-compile `run_uncached` schedule exactly —
    // every phase time and the full idle histogram, pinned through the FNV
    // digest — across Poisson (two seeds) and bursty arrivals under both
    // batch policies, plus the request/batch accounting derived from it.
    let server = dlrm_server();
    let mut traces: Vec<(String, Vec<u64>)> = Vec::new();
    for seed in [3u64, 17] {
        traces.push((
            format!("poisson-{seed}"),
            ArrivalProcess::Poisson { mean_interval_cycles: 80_000.0, seed }.arrivals(16),
        ));
    }
    traces.push((
        "bursty".to_string(),
        ArrivalProcess::BurstyOnOff {
            burst_len: 4,
            intra_burst_cycles: 1_000,
            off_cycles: 500_000,
        }
        .arrivals(16),
    ));
    for (name, arrivals) in &traces {
        for policy in corpus_policies() {
            let label = format!("{name} / {}", policy.label());
            let fresh = server.run_uncached(arrivals, &policy);
            let cached = server.run(arrivals, &policy);
            assert_eq!(
                schedule_digest(&cached.simulation),
                schedule_digest(&fresh.simulation),
                "{label}: cached-compile schedule diverges from the fresh compile"
            );
            assert_eq!(cached.simulation.timings(), fresh.simulation.timings(), "{label}");
            assert_eq!(cached.batches, fresh.batches, "{label}: batch records diverge");
            assert_eq!(cached.requests, fresh.requests, "{label}: request records diverge");
            assert_eq!(
                cached.compiled.ops(),
                fresh.compiled.ops(),
                "{label}: concatenated compiled graphs diverge"
            );
            // Re-running the cached path (now a guaranteed cache hit, with
            // warm scratch buffers) stays deterministic.
            let replay = server.run(arrivals, &policy);
            assert_eq!(
                schedule_digest(&replay.simulation),
                schedule_digest(&cached.simulation),
                "{label}: cache-hit replay diverges"
            );
        }
    }
}

#[test]
fn low_load_gaps_are_real_idle_intervals_that_the_evaluator_gates() {
    // A slow fixed-rate trace: 8 requests, one every 2M cycles. The
    // inter-request gaps must appear as long idle intervals on the busy
    // timeline, and the *unmodified* interval-walking evaluator must gate
    // them (ReGate-Full's savings over the trace far exceed the same
    // trace's saturated savings).
    let server = dlrm_server();
    let gap = 2_000_000u64;
    let low = server.run(
        &ArrivalProcess::FixedRate { interval_cycles: gap }.arrivals(8),
        &BatchPolicy::Static { batch: 1 },
    );
    let histogram: IdleHistogram = low.simulation.idle_histogram();
    for kind in [ComponentKind::Sa, ComponentKind::Vu, ComponentKind::Hbm] {
        assert!(
            histogram.gateable_cycles(kind, 100_000) > 6 * gap,
            "{kind:?}: the inter-request gaps are missing from the idle histogram"
        );
    }
    // Duty cycle measured from the schedule is far below saturation.
    assert!(
        low.measured_duty_cycle() < 0.5,
        "low-load duty cycle {} should sit well below 1",
        low.measured_duty_cycle()
    );
    let saturated =
        server.run(&ArrivalProcess::saturating().arrivals(8), &BatchPolicy::Static { batch: 8 });
    assert!(saturated.measured_duty_cycle() > low.measured_duty_cycle());

    let evaluator = Evaluator::new(NpuGeneration::D);
    let low_report = ServingReport::evaluate(&low, &evaluator);
    let sat_report = ServingReport::evaluate(&saturated, &evaluator);
    let low_savings = low_report.design(Design::ReGateFull).savings;
    let sat_savings = sat_report.design(Design::ReGateFull).savings;
    assert!(
        low_savings > sat_savings + 0.05,
        "gating over the gaps must add savings: low {low_savings} vs saturated {sat_savings}"
    );
    // NoPG pays for the gaps (leaking at full power through them), which
    // is where the extra savings come from.
    assert!(
        low_report.design(Design::NoPg).total_j > sat_report.design(Design::NoPg).total_j,
        "NoPG must burn leakage through the inter-request gaps"
    );
}
