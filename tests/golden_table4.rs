//! Golden-value regression net over the Table-4-style per-workload
//! evaluation (paper §6, Figure 17).
//!
//! Each row pins the ReGate design points' energy savings and the NoPG
//! static-energy fraction to the values produced by the analytical model
//! at the time this net was recorded, with a ±3-percentage-point band.
//! The bands are intentionally tighter than the claim ranges in
//! `paper_claims.rs`: their job is to catch *silent drift* of the energy
//! model during refactors, not to re-validate the paper. If a deliberate
//! model improvement moves a number, re-record the row and say why in the
//! commit message.

use npu_arch::NpuGeneration;
use npu_models::{DiffusionModel, DlrmSize, LlamaModel, LlmPhase, Workload};
use regate::{Design, Evaluator};

/// Absolute tolerance on every recorded fraction (3 percentage points).
const TOL: f64 = 0.03;

/// One golden row: workload, chip count, then the recorded
/// (ReGate-Base, ReGate-HW, ReGate-Full, Ideal) energy savings and the
/// NoPG static-energy fraction.
struct GoldenRow {
    workload: Workload,
    chips: usize,
    base: f64,
    hw: f64,
    full: f64,
    ideal: f64,
    static_fraction: f64,
}

fn golden_rows() -> Vec<GoldenRow> {
    let row = |workload, chips, base, hw, full, ideal, static_fraction| GoldenRow {
        workload,
        chips,
        base,
        hw,
        full,
        ideal,
        static_fraction,
    };
    vec![
        // Recorded on NPU-D with the workloads' default batches (small chip
        // counts so the net stays fast; the full Table 4 scale is exercised
        // by the `evaluation` harness binary).
        //
        // Re-recorded with the event-timeline engine and interval-accurate
        // gating: overlapped DMA shrinks the makespan (lower static
        // fractions), hardware idle detection now walks real idle
        // intervals (Base recovers inter-operator gaps it previously could
        // not see, raising decode Base savings), and component-level SA
        // gating no longer credits sub-BET gaps (slightly lower
        // prefill/diffusion Full savings).
        //
        // Re-recorded again when SRAM gating moved from the span-weighted
        // capacity snapshot onto the per-segment event timeline (§4.3,
        // ISSUE 4): a segment now burns full static power for its *whole*
        // live clock interval — including prefetch lead-in and
        // producer-wait gaps the per-operator averaging never charged —
        // and dead intervals pay real break-even filtering and retention
        // transition costs. Workloads with larger live working sets
        // (training, prefill, diffusion) shift down up to ~1pp; decode and
        // DLRM, whose scratchpads are almost entirely dead segments, are
        // unchanged at this precision. NoPG static fractions are untouched
        // (the baseline never gates). The out-of-duty-cycle idle leakage
        // also switched from `max(logic_off, sram_off)` to per-component
        // weighting, which does not enter these busy-energy rows.
        row(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Training),
            4,
            0.1178,
            0.1204,
            0.1238,
            0.1249,
            0.5360,
        ),
        row(
            Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Training),
            4,
            0.1123,
            0.1151,
            0.1160,
            0.1170,
            0.5355,
        ),
        row(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Prefill),
            1,
            0.1110,
            0.1137,
            0.1166,
            0.1187,
            0.5293,
        ),
        row(
            Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Prefill),
            1,
            0.1091,
            0.1120,
            0.1125,
            0.1147,
            0.5321,
        ),
        row(
            Workload::llm(LlamaModel::Llama3_8B, LlmPhase::Decode),
            1,
            0.2414,
            0.2414,
            0.2761,
            0.2806,
            0.6717,
        ),
        row(
            Workload::llm(LlamaModel::Llama2_13B, LlmPhase::Decode),
            1,
            0.2413,
            0.2413,
            0.2760,
            0.2805,
            0.6715,
        ),
        row(
            Workload::llm(LlamaModel::Llama3_70B, LlmPhase::Decode),
            8,
            0.2397,
            0.2397,
            0.2744,
            0.2789,
            0.6714,
        ),
        // DLRM rows re-recorded for the DAG-aware scheduler. Three model
        // changes contribute to the shift: (1) the graph now emits
        // per-table gathers as independent sources fanning into the
        // all-to-all, so the gathers and the bottom MLP overlap the
        // exchange instead of serializing before it (makespan shrinks and
        // the static fraction drops with it); (2) the pairwise feature
        // interaction is lowered as batched VU dot products instead of an
        // SA matmul (its per-sample shapes cannot amortize the SA warm-up,
        // §4.3), moving its cycles from the SA to the VU; (3) the
        // interaction's HBM write-back is approximated as a features×dim
        // tile rather than the features² pair matrix (a small byte-model
        // change, see the comment in `dlrm.rs`). Every shift is small in
        // absolute terms because DLRM's execution is dominated by the
        // latency-bound all-to-all (the paper's 98–99% ICI temporal
        // utilization, Figure 8), which no amount of gather overlap can
        // hide. LLM and diffusion rows are bit-identical to the pre-DAG
        // engine: their graphs are pure chains, and a chain's schedule is
        // unchanged under producer-set issue (verified exactly by
        // `dag_invariants::pure_chains_reproduce_the_pre_dag_engine`).
        row(Workload::dlrm(DlrmSize::Small), 8, 0.3753, 0.3770, 0.4241, 0.4323, 0.9184),
        row(Workload::dlrm(DlrmSize::Medium), 8, 0.3766, 0.3776, 0.4242, 0.4323, 0.9202),
        row(Workload::dlrm(DlrmSize::Large), 8, 0.3722, 0.3731, 0.4185, 0.4263, 0.9150),
        row(Workload::diffusion(DiffusionModel::DitXl), 4, 0.1483, 0.1622, 0.1851, 0.1861, 0.5270),
        row(Workload::diffusion(DiffusionModel::Gligen), 4, 0.1750, 0.1957, 0.2178, 0.2228, 0.5893),
    ]
}

fn assert_close(workload: &Workload, what: &str, got: f64, recorded: f64) {
    assert!(
        (got - recorded).abs() <= TOL,
        "{workload}: {what} drifted from golden value: got {got:.4}, recorded {recorded:.4} \
         (tolerance ±{TOL})"
    );
}

#[test]
fn energy_savings_match_recorded_golden_values() {
    let evaluator = Evaluator::new(NpuGeneration::D);
    for row in golden_rows() {
        let eval = evaluator.evaluate(&row.workload, row.chips);
        let w = &row.workload;
        assert_close(w, "ReGate-Base savings", eval.energy_savings(Design::ReGateBase), row.base);
        assert_close(w, "ReGate-HW savings", eval.energy_savings(Design::ReGateHw), row.hw);
        assert_close(w, "ReGate-Full savings", eval.energy_savings(Design::ReGateFull), row.full);
        assert_close(w, "Ideal savings", eval.energy_savings(Design::Ideal), row.ideal);
        assert_close(
            w,
            "NoPG static fraction",
            eval.design(Design::NoPg).energy.static_fraction(),
            row.static_fraction,
        );
    }
}

#[test]
fn design_points_are_ordered_base_hw_full_ideal() {
    // Structural invariant behind every golden row: adding mechanisms can
    // only add savings, and Ideal upper-bounds everything.
    let evaluator = Evaluator::new(NpuGeneration::D);
    for row in golden_rows() {
        let eval = evaluator.evaluate(&row.workload, row.chips);
        let base = eval.energy_savings(Design::ReGateBase);
        let hw = eval.energy_savings(Design::ReGateHw);
        let full = eval.energy_savings(Design::ReGateFull);
        let ideal = eval.energy_savings(Design::Ideal);
        let w = &row.workload;
        assert!(base <= hw + 1e-9, "{w}: Base {base} > HW {hw}");
        assert!(hw <= full + 1e-9, "{w}: HW {hw} > Full {full}");
        assert!(full <= ideal + 1e-9, "{w}: Full {full} > Ideal {ideal}");
        assert!(eval.energy_savings(Design::NoPg).abs() < 1e-12, "NoPG is the baseline");
    }
}
